"""End-to-end study orchestration (the whole of Section 3).

``Study.run()`` executes the full measurement campaign against a
freshly generated world:

    day loop (38 days):
        world:     generate the day's groups + tweets
        discovery: 24 hourly Search polls + Streaming collection
        monitor:   one metadata snapshot per discovered live URL
        control:   sample-stream collection (pattern-free tweets)
        join day:  join a uniform-random sample per platform
    end:
        collect messages + user observations from joined groups

and returns the :class:`~repro.core.dataset.StudyDataset` all analyses
consume.

Long campaigns survive process death through the run store
(:mod:`repro.checkpoint`): ``run(checkpoint_dir=...)`` snapshots the
complete campaign state at every day boundary, ``Study.resume(...)``
restores the latest (or a chosen) boundary and continues — exporting
a dataset byte-identical to the uninterrupted run — and
``Study.fork(...)`` branches a campaign at day *k* under a different
seed or fault plan for what-if experiments.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

from repro.checkpoint import (
    DEFAULT_ANCHOR_EVERY,
    RunStore,
    capture_campaign,
    decode_day_record,
    encode_day_slice,
    encode_rollup,
    replay_marker,
)
from repro.checkpoint.slices import (
    SliceCursor,
    build_rollup,
    capture_day_slice,
)
from repro.clock import STUDY_DAYS
from repro.core.dataset import StudyDataset
from repro.core.discovery import DiscoveryEngine
from repro.core.joiner import DEFAULT_JOIN_TARGETS, GroupJoiner
from repro.core.monitor import MetadataMonitor
from repro.core.patterns import DEFAULT_PATTERNS
from repro.errors import CheckpointError, ConfigError, TransientError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyDiscordAPI,
    FaultyPreviewClient,
    FaultySearchAPI,
    FaultyStreamingAPI,
)
from repro.faults.proxies import FaultProxy
from repro.parallel import (
    ParallelEngine,
    SupervisedEngine,
    SupervisionPolicy,
    build_replay_clients,
)
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher
from repro.resilience import CollectionHealth, ResilienceExecutor
from repro.scenarios import DEFAULT_PACK_NAME, ScenarioPack
from repro.simulation.world import World, WorldConfig
from repro.telemetry import Telemetry
from repro.twitter.search import SearchAPI
from repro.twitter.service import tweet_matches
from repro.twitter.streaming import StreamingAPI

__all__ = ["Study", "StudyConfig"]

logger = logging.getLogger(__name__)

#: The three joinable messaging platforms, in reporting order.
_PLATFORMS = ("whatsapp", "telegram", "discord")


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of a full measurement campaign.

    Attributes:
        seed: Root seed for the world and every sampling decision.
        n_days: Campaign length (the paper's was 38).
        scale: Linear scale on tweet/URL volumes (1.0 = paper scale).
        message_scale: Thinning factor on in-group message volumes,
            independent of ``scale`` (messages are only materialised
            for joined groups).
        join_targets: Groups to join per platform (paper: 416/100/100).
        join_day: Day on which the join sample is drawn.
        control_sample_rate: Sample-stream rate for the control
            dataset (see :class:`~repro.simulation.world.WorldConfig`).
        member_fetch_cap: Max member profiles fetched per group.
        faults: Fault plan (or built-in profile name) to inject during
            the campaign; None (the default) runs the bare, fault-free
            pipeline.
        fault_seed: Seed for the fault schedule; defaults to ``seed``
            so the same study replays the same faults, while a
            different fault seed replays the same world under a
            different failure schedule.
        scenario: Scenario pack (or built-in pack name) shaping the
            world's weather (see :mod:`repro.scenarios`); None (the
            default) runs the paper's weather — identical, byte for
            byte, to naming the identity ``paper-weather`` pack.
    """

    seed: int = 7
    n_days: int = STUDY_DAYS
    scale: float = 0.01
    message_scale: float = 0.02
    join_targets: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_JOIN_TARGETS)
    )
    join_day: int = 10
    control_sample_rate: float = 0.5
    member_fetch_cap: int = 5_000
    faults: Optional[Union[FaultPlan, str]] = None
    fault_seed: Optional[int] = None
    scenario: Optional[Union[ScenarioPack, str]] = None

    def __post_init__(self) -> None:
        if not 0 <= self.join_day < self.n_days:
            raise ConfigError(
                f"join_day must fall inside the window, got {self.join_day}"
            )
        if not 0.0 < self.message_scale <= 1.0:
            raise ConfigError(
                f"message_scale must be in (0, 1], got {self.message_scale}"
            )
        if isinstance(self.faults, str):
            object.__setattr__(
                self, "faults", FaultPlan.profile(self.faults)
            )
        if isinstance(self.scenario, str):
            object.__setattr__(
                self, "scenario", ScenarioPack.named(self.scenario)
            )

    @property
    def scenario_name(self) -> str:
        """The active pack name (None resolves to ``paper-weather``)."""
        if self.scenario is None:
            return DEFAULT_PACK_NAME
        return self.scenario.name

    def world_config(self) -> WorldConfig:
        """The world configuration implied by this study config."""
        return WorldConfig(
            seed=self.seed,
            n_days=self.n_days,
            scale=self.scale,
            control_sample_rate=self.control_sample_rate,
            scenario=self.scenario,
        )


class Study:
    """One full measurement campaign over a freshly generated world."""

    def __init__(
        self,
        config: Optional[StudyConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or StudyConfig()
        self.world = World(self.config.world_config())
        #: The campaign's failure ledger (exported with the dataset).
        self.health = CollectionHealth()
        #: The campaign's observability handle, shared by every layer
        #: (off by default; enable with ``telemetry.enable()`` or the
        #: CLI's ``--telemetry-dir``).  It pickles with the study, so
        #: a resumed campaign reports cumulative telemetry.
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._resilience = ResilienceExecutor(
            seed=self.config.seed,
            health=self.health,
            telemetry=self.telemetry,
        )
        self.injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            fault_seed = (
                self.config.fault_seed
                if self.config.fault_seed is not None
                else self.config.seed
            )
            self.injector = FaultInjector(
                self.config.faults, seed=fault_seed, health=self.health
            )
        self._search = self._faulty(
            SearchAPI(self.world.twitter, telemetry=self.telemetry),
            FaultySearchAPI,
        )
        self._stream = self._faulty(
            StreamingAPI(self.world.twitter, telemetry=self.telemetry),
            FaultyStreamingAPI,
        )
        self.engine = DiscoveryEngine(
            self._search,
            self._stream,
            resilience=self._resilience,
            telemetry=self.telemetry,
        )
        self._hasher = PhoneHasher(salt=f"study-{self.config.seed}")
        for name in _PLATFORMS:
            self.world.platform(name).telemetry = self.telemetry
        whatsapp = self.world.platform("whatsapp")
        telegram = self.world.platform("telegram")
        discord = self.world.platform("discord")
        wa_web: object = WhatsAppWebClient(whatsapp)
        tg_web: object = TelegramWebClient(telegram)
        dc_api: object = DiscordAPI(discord, "dc-monitor")
        if self.injector is not None:
            wa_web = FaultyPreviewClient(wa_web, self.injector, "whatsapp")
            tg_web = FaultyPreviewClient(tg_web, self.injector, "telegram")
            dc_api = FaultyDiscordAPI(dc_api, self.injector)
        self.monitor = MetadataMonitor(
            whatsapp=wa_web,
            telegram=tg_web,
            discord=dc_api,
            hasher=self._hasher,
            resilience=self._resilience,
            telemetry=self.telemetry,
        )
        self.joiner = GroupJoiner(
            whatsapp,
            telegram,
            discord,
            hasher=self._hasher,
            seed=self.config.seed,
            member_fetch_cap=self.config.member_fetch_cap,
            resilience=self._resilience,
            injector=self.injector,
            telemetry=self.telemetry,
        )
        #: Campaign position: the next day the run loop will execute.
        self._next_day = 0
        #: True only while resume() deterministically replays the gap
        #: between an anchor and a replay marker (telemetry labels the
        #: re-executed days so replayed work is distinguishable).
        self._replaying = False
        #: Most recent day whose record is a full state snapshot.
        self._last_anchor: Optional[int] = None
        #: The in-flight dataset (accumulates control tweets day by day).
        self._dataset: Optional[StudyDataset] = None
        #: Emission bookkeeping for per-day analysis slices (see
        #: :mod:`repro.checkpoint.slices`); pickles inside anchors so
        #: a resume continues the emission exactly where it stopped.
        self._slice_cursor = SliceCursor()
        #: Attached run store (resume/fork); never serialised.
        self._store: Optional[RunStore] = None
        #: Supervised parallel probe engine, alive only inside a
        #: ``run(workers=N)`` call with N > 1; never serialised —
        #: anchors and resume replay are engine-free, so any worker
        #: count can continue any store.
        self._parallel: Optional[SupervisedEngine] = None
        #: Chaos hook ``day -> Optional[worker_index]``: fired by the
        #: supervisor right after shards are shipped; a returned index
        #: is SIGKILLed mid-probe.  Never serialised.
        self.worker_kill_hook = None
        #: Chaos hook ``(day, stage) -> None``, fired at every stage
        #: boundary of a *live* day (never during resume replay).  The
        #: chaos harness (:mod:`repro.chaos`) installs hooks that abort
        #: or SIGKILL the campaign at seeded points; never serialised —
        #: a restored study runs bare.
        self.stage_hook = None

    def _faulty(self, client, proxy_cls):
        """Wrap ``client`` in its fault proxy when a plan is active."""
        if self.injector is None:
            return client
        return proxy_cls(client, self.injector)

    def __getstate__(self) -> dict:
        # The attached run store names an on-disk directory; a day
        # record must stay relocatable, so the store handle is
        # reattached by resume()/fork() rather than serialised.  The
        # chaos stage hook is a closure over the aborting process and
        # must never ride into an anchor either.
        state = dict(self.__dict__)
        state["_store"] = None
        state["stage_hook"] = None
        state["worker_kill_hook"] = None
        # The worker pool holds live processes and pipes; a restored
        # campaign starts (or not) its own via run(workers=N).
        state["_parallel"] = None
        return state

    def _fire_hook(self, day: int, stage: str) -> None:
        """Fire the chaos stage hook, if one is installed.

        Replayed days are skipped: a resume must land on the day the
        campaign died at without re-triggering the crash that killed
        it.  ``getattr`` tolerates studies restored from anchors
        captured before the hook attribute existed.
        """
        hook = getattr(self, "stage_hook", None)
        if hook is not None and not self._replaying:
            hook(day, stage)

    # -- running -----------------------------------------------------------

    def attach_store(
        self,
        checkpoint_dir: Union[str, os.PathLike],
        anchor_every: Optional[int] = None,
        slices: bool = False,
    ) -> RunStore:
        """Create (or reset) and attach a run store without running.

        The store-attachment half of ``run(checkpoint_dir=...)``,
        split out for callers that need the store handle *before* the
        campaign starts — the serve daemon builds its published-day
        read view over the store, then drives the campaign with a
        plain ``run()`` against the already-attached store (exactly
        the path a resumed study takes).

        ``slices=True`` additionally records per-day analysis slices
        and the end-of-campaign rollup (the inputs to
        :mod:`repro.analysis.streaming`); like the anchor cadence it
        is an execution choice outside the config digest, persisted
        by the store itself so a resume keeps emitting slices.
        """
        self._store = RunStore.create(
            checkpoint_dir,
            self.config,
            anchor_every=(
                DEFAULT_ANCHOR_EVERY if anchor_every is None else anchor_every
            ),
            slices=slices,
        )
        self._store.telemetry = self.telemetry
        # A marker may only defer to an anchor in the *same* store:
        # force the first record of a fresh store to be an anchor
        # snapshot.
        self._last_anchor = None
        return self._store

    @property
    def store(self) -> Optional[RunStore]:
        """The attached run store, if any (read-only handle)."""
        return self._store

    def run(
        self,
        checkpoint_dir: Optional[Union[str, os.PathLike]] = None,
        *,
        anchor_every: Optional[int] = None,
        slices: bool = False,
        workers: int = 1,
        worker_deadline: Optional[float] = None,
        worker_restarts: Optional[int] = None,
        day_hook=None,
    ) -> StudyDataset:
        """Execute (or continue) the campaign; returns the dataset.

        With ``checkpoint_dir`` a day record lands in a
        :class:`~repro.checkpoint.RunStore` after every observed day,
        so a killed process can :meth:`resume` from any boundary.
        Every ``anchor_every``-th record (default
        :data:`~repro.checkpoint.DEFAULT_ANCHOR_EVERY`) is a full
        state snapshot; the records in between are replay markers —
        cheap to write, restored by replaying from the anchor.  A
        study obtained from :meth:`resume`/:meth:`fork` keeps
        checkpointing into its attached store without passing the
        directory again.

        ``slices=True`` (requires ``checkpoint_dir``) additionally
        emits a per-day analysis slice before each day record and an
        end-of-campaign rollup, enabling the bounded-memory streaming
        analyses (``repro analyze --streaming``) over the store.

        ``workers`` > 1 shards the daily monitor probe pass across
        that many worker processes (:mod:`repro.parallel`).  The
        worker count is a pure execution choice: datasets, exports,
        checkpoints and fsck digests are byte-identical for any value,
        and a checkpointed campaign may be resumed under a different
        count.  It is deliberately *not* part of
        :class:`StudyConfig` — it must not perturb the config digest
        a run store is keyed by — and is recorded informationally in
        the store manifest instead.

        The pool runs supervised (:mod:`repro.parallel.supervisor`):
        ``worker_deadline`` bounds how long a probe day waits on any
        one worker before its shard is re-executed in-parent, and
        ``worker_restarts`` is the per-worker respawn budget before
        the campaign degrades to the sequential path for its remaining
        days.  Both are runtime knobs like ``workers`` — outside the
        config digest, free to differ between a run and its resume —
        and neither can change a single artefact byte.

        ``day_hook`` is the drive-by-day hook: a callable fired with
        the day index after each day completes — after its checkpoint
        record landed, when a store is attached — from the campaign
        thread.  The serve daemon uses it to publish the finished day
        to concurrent readers and to pace or drain the campaign: any
        exception the hook raises stops the campaign cleanly (the
        worker pool is closed first) and propagates to the caller,
        leaving the store resumable from the day that just
        checkpointed.  The hook runs outside the chaos stage hooks
        and never fires during resume replay.
        """
        config = self.config
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise ConfigError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if workers == 1 and (
            worker_deadline is not None or worker_restarts is not None
        ):
            raise ConfigError(
                "worker_deadline/worker_restarts require workers > 1"
            )
        if slices and checkpoint_dir is None:
            raise ConfigError(
                "slices=True requires checkpoint_dir (slices live in "
                "the run store)"
            )
        if checkpoint_dir is not None:
            self.attach_store(checkpoint_dir, anchor_every, slices=slices)
        if self._store is not None:
            self._store.record_engine(workers)
        if self._dataset is None:
            self._dataset = StudyDataset(
                n_days=config.n_days,
                scale=config.scale,
                message_scale=config.message_scale,
            )
        dataset = self._dataset
        if workers > 1:
            # Fault-free campaigns use snapshot mode (workers ship
            # finished snapshots; all accounting is order-independent
            # without an injector); campaigns with a fault plan fall
            # back to replay mode, whose merge re-runs the accounting
            # sequentially so injector draws keep their order.
            engine = ParallelEngine(
                workers,
                telemetry=self.telemetry,
                mode="replay" if self.injector is not None else "snapshot",
                monitor_params={
                    "salt": self._hasher.salt,
                    "seed": config.seed,
                },
            )
            policy_kwargs = {"backoff_seed": config.seed}
            if worker_deadline is not None:
                policy_kwargs["deadline_s"] = worker_deadline
            if worker_restarts is not None:
                policy_kwargs["max_restarts"] = worker_restarts
            self._parallel = SupervisedEngine(
                engine,
                policy=SupervisionPolicy(**policy_kwargs),
                telemetry=self.telemetry,
                kill_hook=self.worker_kill_hook,
            )
        else:
            self._parallel = None

        try:
            for day in range(self._next_day, config.n_days):
                self._run_day(day, dataset)
                self._next_day = day + 1
                if self._store is not None:
                    self._fire_hook(day, "checkpoint")
                    # Timed after the fact: the anchor pickles the whole
                    # study — tracer included — so the checkpoint region
                    # must never hold an open span.
                    start = time.perf_counter()
                    self._checkpoint_day(day)
                    self.telemetry.record_span(
                        "checkpoint.write_day",
                        stage="checkpoint",
                        day=day,
                        wall_s=time.perf_counter() - start,
                    )
                self._fire_hook(day, "day_end")
                if day_hook is not None:
                    day_hook(day)
                logger.debug("day %d/%d complete", day + 1, config.n_days)
        finally:
            if self._parallel is not None:
                self._parallel.close()
            self._parallel = None

        dataset = self._finalize(dataset)
        if self._store is not None and self._store.slices_enabled:
            # Joined-group and user aggregates only materialise at
            # collection close; they ride in one bounded rollup record
            # (idempotent rewrite: a re-run lands on the same bytes).
            self._store.write_rollup(
                encode_rollup(build_rollup(dataset, config))
            )
        return dataset

    def _write_day_slice(self, day: int, store: RunStore) -> None:
        """Emit day ``day``'s analysis slice into ``store``.

        Advances the slice cursor as a side effect, so it must run
        *before* the day's anchor capture — the anchor then pickles
        the advanced cursor and a resume emits exactly the deltas the
        uninterrupted campaign would have.
        """
        store.write_slice(day, encode_day_slice(capture_day_slice(self, day)))

    def _checkpoint_day(self, day: int) -> None:
        """Write day ``day``'s record: an anchor on cadence, else a marker."""
        if self._store.slices_enabled:
            self._write_day_slice(day, self._store)
        due = (
            self._last_anchor is None
            or day - self._last_anchor >= self._store.anchor_every
        )
        if due:
            # Anchor *before* capturing so the snapshot records itself
            # as the anchor in force — the cadence survives a resume.
            self._last_anchor = day
            self._store.write_day(day, capture_campaign(self))
        else:
            self._store.write_day(
                day, replay_marker(self._last_anchor), kind="replay"
            )

    def _run_day(self, day: int, dataset: StudyDataset) -> None:
        """One campaign day: generate, discover, monitor, sample, join."""
        tel = self.telemetry
        mode = "replay" if self._replaying else "run"
        # ``getattr``: anchors captured before the engine attribute
        # existed restore without it; resume replay is always
        # sequential regardless.
        parallel = getattr(self, "_parallel", None)
        if self._replaying:
            parallel = None
        self._fire_hook(day, "world")
        if parallel is not None:
            # Replicas advance through ``day`` while the parent
            # generates its own (tweet-heavy) day.  No-op until the
            # pool starts at the first live monitor stage.
            parallel.begin_day(day)
        with tel.span("world.generate_day", stage="world", day=day, mode=mode):
            self.world.generate_day(day)
        self._fire_hook(day, "discovery")
        with tel.span("discovery.run_day", stage="discovery", day=day, mode=mode):
            self.engine.run_day(day)
        self._fire_hook(day, "monitor")
        with tel.span("monitor.observe_day", stage="monitor", day=day, mode=mode):
            if parallel is not None:
                self._observe_day_parallel(parallel, day)
            else:
                self.monitor.observe_day(day, self.engine.records.values())
        if parallel is not None and getattr(parallel, "degraded", False):
            # A worker exhausted its restart budget this day; the
            # supervisor already finished the day in-parent, and the
            # campaign's remaining days run the plain sequential loop.
            parallel.close()
            self._parallel = None
            logger.warning(
                "parallel pool degraded at day %d; continuing sequentially",
                day,
            )
        self._fire_hook(day, "control")
        with tel.span("control.sample", stage="control", day=day, mode=mode):
            self._collect_control(day, dataset)
        if day == self.config.join_day:
            self._fire_hook(day, "join")
            with tel.span("joiner.join_sample", stage="join", day=day, mode=mode):
                self._join(day)
        tel.gauge("campaign_days_completed", day + 1)
        tel.count("campaign_days_total", mode=mode)

    def _observe_day_parallel(
        self, parallel: SupervisedEngine, day: int
    ) -> None:
        """Day ``day``'s monitor pass through the supervised pool.

        The due-set is the same :meth:`MetadataMonitor.due` predicate
        the sequential loop applies.  How a probe's outcome is applied
        depends on the engine mode: in snapshot mode (fault-free) the
        workers return finished snapshots plus per-shard ledger
        deltas, and the parent folds them in canonical record order
        via :meth:`MetadataMonitor.merge_day`; in replay mode (a fault
        plan is active) the workers return raw previews and the parent
        replays the *unchanged* ``observe_day`` loop with replay
        clients serving them, so every fault draw, retry, breaker
        transition and ledger bump happens in sequential order.
        Either way the two paths are byte-identical by construction.
        """
        if not parallel.started:
            # Lazy start: the bootstrap snapshots the world as of this
            # day, so fresh, resumed and forked campaigns all hand
            # their replicas the exact state the parent monitors.
            parallel.start(self.world, day)
        t = self.monitor.observation_time(day)
        probes = [
            (record.canonical, record.url, record.platform)
            for record in self.engine.records.values()
            if self.monitor.due(record, t)
        ]
        outcomes, healths = parallel.probe_day(day, probes)
        tel = self.telemetry
        apply_start = tel.clock()
        if parallel.mode == "snapshot":
            for shard_health in healths:
                self.health.merge(shard_health)
            self.monitor.merge_day(
                day, self.engine.records.values(), outcomes
            )
            # Keep the parent executor's call index (retry-jitter
            # stream position) where a sequential pass would leave it;
            # first-appearance order mirrors sequential breaker
            # creation order.
            per_platform: Dict[str, int] = {}
            for _canonical, _url, platform in probes:
                per_platform[platform] = per_platform.get(platform, 0) + 1
            for platform, count in per_platform.items():
                self._resilience.note_external_calls(
                    platform, "observe", count
                )
            tel.count(
                "parallel_apply_seconds_total", tel.clock() - apply_start
            )
            return
        saved = self.monitor.clients()
        self.monitor.replace_clients(
            *build_replay_clients(outcomes, self.injector)
        )
        try:
            self.monitor.observe_day(day, self.engine.records.values())
        finally:
            self.monitor.replace_clients(*saved)
            tel.count(
                "parallel_apply_seconds_total", tel.clock() - apply_start
            )

    def _finalize(self, dataset: StudyDataset) -> StudyDataset:
        """End-of-campaign collection from joined groups."""
        config = self.config
        with self.telemetry.span(
            "study.finalize", stage="analysis", day=config.n_days - 1
        ):
            joined, users = self.joiner.collect(
                until_t=float(config.n_days),
                message_scale=config.message_scale,
            )
        dataset.records = dict(self.engine.records)
        dataset.tweets = dict(self.engine.tweets)
        dataset.snapshots = dict(self.monitor.snapshots)
        dataset.joined = joined
        dataset.users = users
        dataset.health = self.health
        dataset.scenario = config.scenario_name
        # ``getattr``: anchors captured before the personas attribute
        # existed restore without it.
        dataset.personas = dict(getattr(self.world, "personas", {}))
        return dataset

    # -- checkpoint: resume and fork ---------------------------------------

    @classmethod
    def resume(
        cls,
        checkpoint_dir: Union[str, os.PathLike],
        from_day: Optional[int] = None,
    ) -> "Study":
        """Restore a checkpointed campaign, positioned to continue.

        Restores the record of ``from_day`` (default: the latest
        checkpointed day) and returns a study whose :meth:`run`
        continues with the following day — and, because the complete
        state (RNG streams included) is restored, exports a dataset
        byte-identical to the uninterrupted campaign's.  A replay
        marker restores its anchor snapshot and deterministically
        replays the days up to ``from_day``; the landing state is
        exact, so the guarantee is the same either way.  Further day
        checkpoints are written back into the same store.
        """
        store = RunStore.open(checkpoint_dir)
        day = store.latest_day() if from_day is None else from_day
        start = time.perf_counter()
        record = decode_day_record(store.read_day(day))
        if record["kind"] == "replay":
            anchor_day = record["anchor_day"]
            record = decode_day_record(store.read_day(anchor_day))
            if record["kind"] != "anchor":
                raise CheckpointError(
                    f"day {day} defers to day {anchor_day} in "
                    f"{checkpoint_dir}, which is not an anchor snapshot"
                )
        study = record["study"]
        if not isinstance(study, cls):
            raise CheckpointError(
                f"checkpoint day record in {checkpoint_dir} does not "
                "hold a Study"
            )
        store.check_config(study.config)
        restore_s = time.perf_counter() - start
        study.telemetry.record_span(
            "checkpoint.restore", stage="restore", day=day, wall_s=restore_s
        )
        study.telemetry.count("checkpoint_restores_total")
        # Replay the marker gap (no-op when the record was an anchor).
        study._replaying = True
        try:
            for replay_day in range(study._next_day, day + 1):
                study._run_day(replay_day, study._dataset)
                study._next_day = replay_day + 1
                if store.slices_enabled:
                    # Re-emit the gap day's slice: the cursor restored
                    # from the anchor must advance through the replayed
                    # days, and the content-addressed rewrite is a
                    # no-op for slices that already landed (it also
                    # heals a slice lost to a crash mid-write).
                    study._write_day_slice(replay_day, store)
        finally:
            study._replaying = False
        study._store = store
        store.telemetry = study.telemetry
        return study

    @classmethod
    def fork(
        cls,
        checkpoint_dir: Union[str, os.PathLike],
        day: int,
        *,
        seed: Optional[int] = None,
        fault_plan: Union[FaultPlan, str, None] = "keep",
        fault_seed: Optional[int] = None,
        scenario: Union[ScenarioPack, str, None] = "keep",
        fork_dir: Optional[Union[str, os.PathLike]] = None,
    ) -> "Study":
        """Branch a checkpointed campaign at day ``day``.

        The campaign's past — everything through day ``day`` — is
        shared with the parent; its future diverges under the
        requested changes:

        * ``seed``: reseeds the world's remaining days, future join
          sampling, and backoff jitter (already-materialised streams,
          and phone-hashing identity, keep the parent's seed).
        * ``fault_plan``: a :class:`~repro.faults.FaultPlan`, a
          profile name, or None to strip faults; the literal string
          ``"keep"`` (the default) keeps the parent's plan.
        * ``fault_seed``: reseeds the fault schedule (fresh
          per-endpoint call counters from the fork day).
        * ``scenario``: a :class:`~repro.scenarios.ScenarioPack`, a
          built-in pack name, or None to strip back to the paper's
          weather; ``"keep"`` (the default) keeps the parent's pack.
          The swap governs the fork's *future* days only — groups
          already born keep their weather, exactly like a reseed.

        With no changes requested, the fork reproduces the parent's
        tail exactly.  ``fork_dir`` attaches a fresh run store (the
        fork never writes into the parent's): the fork-day record is
        written immediately, making the new store self-contained and
        itself resumable.
        """
        study = cls.resume(checkpoint_dir, from_day=day)
        parent_anchor_every = study._store.anchor_every
        study._store = None
        if seed is not None:
            study._reseed(seed)
        if fault_plan != "keep" or fault_seed is not None:
            plan = (
                study.config.faults if fault_plan == "keep" else fault_plan
            )
            study._apply_fault_plan(plan, fault_seed)
        if scenario != "keep":
            study._apply_scenario(scenario)
        if fork_dir is not None:
            study._store = RunStore.create(
                fork_dir,
                study.config,
                forked_from={
                    "checkpoint_dir": os.fspath(checkpoint_dir),
                    "day": day,
                },
                anchor_every=parent_anchor_every,
            )
            study._store.telemetry = study.telemetry
            # The fork-day snapshot makes the new store self-contained
            # (and is the anchor its first marker days defer to).
            study._last_anchor = day
            study._store.write_day(day, capture_campaign(study))
        return study

    def _reseed(self, seed: int) -> None:
        """Reseed every future-facing stochastic stream (forks)."""
        self.config = replace(self.config, seed=seed)
        self.world.reseed(seed)
        self._resilience.reseed(seed)
        self.joiner.reseed(seed)

    def _apply_fault_plan(
        self,
        plan: Union[FaultPlan, str, None],
        fault_seed: Optional[int],
    ) -> None:
        """Swap the fault plan in force, re-wrapping every proxy."""
        if isinstance(plan, str):
            plan = FaultPlan.profile(plan)
        self.config = replace(
            self.config, faults=plan, fault_seed=fault_seed
        )
        if plan is None:
            self.injector = None
        else:
            seed = fault_seed if fault_seed is not None else self.config.seed
            self.injector = FaultInjector(
                plan, seed=seed, health=self.health
            )

        def bare(client: object) -> object:
            while isinstance(client, FaultProxy):
                client = client._target
            return client

        self._search = self._faulty(bare(self._search), FaultySearchAPI)
        self._stream = self._faulty(bare(self._stream), FaultyStreamingAPI)
        self.engine.replace_clients(self._search, self._stream)
        wa_web, tg_web, dc_api = (
            bare(c) for c in self.monitor.clients()
        )
        if self.injector is not None:
            wa_web = FaultyPreviewClient(wa_web, self.injector, "whatsapp")
            tg_web = FaultyPreviewClient(tg_web, self.injector, "telegram")
            dc_api = FaultyDiscordAPI(dc_api, self.injector)
        self.monitor.replace_clients(wa_web, tg_web, dc_api)
        self.joiner.replace_injector(self.injector)

    def _apply_scenario(
        self, scenario: Union[ScenarioPack, str, None]
    ) -> None:
        """Swap the scenario pack in force (forks): future days only."""
        if isinstance(scenario, str):
            scenario = ScenarioPack.named(scenario)
        self.config = replace(self.config, scenario=scenario)
        self.world.set_scenario(self.config.scenario)

    def _collect_control(self, day: int, dataset: StudyDataset) -> None:
        """Sample-stream collection, excluding group-URL tweets.

        The real 1 % sample's contamination by group-URL tweets was
        negligible; our scaled-down background firehose would be
        dominated by them, so they are excluded explicitly (documented
        substitution in DESIGN.md).  A transiently-failing sample
        window is simply lost — exactly what a dropped stream
        connection cost the real campaign.
        """
        try:
            sampled = self._resilience.call(
                "twitter",
                "sample",
                day + 1,
                lambda: self._stream.sample(
                    day, day + 1, rate=self.config.control_sample_rate
                ),
            )
        except TransientError:
            self.health.bump("twitter", day, "missed")
            return
        dataset.control_tweets.extend(
            tweet
            for tweet in sampled
            if not tweet_matches(tweet, DEFAULT_PATTERNS)
        )

    def _join(self, day: int) -> None:
        alive = [
            record
            for record in self.engine.records.values()
            if not self.monitor.is_dead(record.canonical)
        ]
        self.joiner.join_sample(
            alive, self.config.join_targets, join_t=day + 0.99
        )
