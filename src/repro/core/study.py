"""End-to-end study orchestration (the whole of Section 3).

``Study.run()`` executes the full measurement campaign against a
freshly generated world:

    day loop (38 days):
        world:     generate the day's groups + tweets
        discovery: 24 hourly Search polls + Streaming collection
        monitor:   one metadata snapshot per discovered live URL
        control:   sample-stream collection (pattern-free tweets)
        join day:  join a uniform-random sample per platform
    end:
        collect messages + user observations from joined groups

and returns the :class:`~repro.core.dataset.StudyDataset` all analyses
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.clock import STUDY_DAYS
from repro.core.dataset import StudyDataset
from repro.core.discovery import DiscoveryEngine
from repro.core.joiner import DEFAULT_JOIN_TARGETS, GroupJoiner
from repro.core.monitor import MetadataMonitor
from repro.core.patterns import DEFAULT_PATTERNS
from repro.errors import ConfigError, TransientError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyDiscordAPI,
    FaultyPreviewClient,
    FaultySearchAPI,
    FaultyStreamingAPI,
)
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher
from repro.resilience import CollectionHealth, ResilienceExecutor
from repro.simulation.world import World, WorldConfig
from repro.twitter.search import SearchAPI
from repro.twitter.service import tweet_matches
from repro.twitter.streaming import StreamingAPI

__all__ = ["Study", "StudyConfig"]


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of a full measurement campaign.

    Attributes:
        seed: Root seed for the world and every sampling decision.
        n_days: Campaign length (the paper's was 38).
        scale: Linear scale on tweet/URL volumes (1.0 = paper scale).
        message_scale: Thinning factor on in-group message volumes,
            independent of ``scale`` (messages are only materialised
            for joined groups).
        join_targets: Groups to join per platform (paper: 416/100/100).
        join_day: Day on which the join sample is drawn.
        control_sample_rate: Sample-stream rate for the control
            dataset (see :class:`~repro.simulation.world.WorldConfig`).
        member_fetch_cap: Max member profiles fetched per group.
        faults: Fault plan (or built-in profile name) to inject during
            the campaign; None (the default) runs the bare, fault-free
            pipeline.
        fault_seed: Seed for the fault schedule; defaults to ``seed``
            so the same study replays the same faults, while a
            different fault seed replays the same world under a
            different failure schedule.
    """

    seed: int = 7
    n_days: int = STUDY_DAYS
    scale: float = 0.01
    message_scale: float = 0.02
    join_targets: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_JOIN_TARGETS)
    )
    join_day: int = 10
    control_sample_rate: float = 0.5
    member_fetch_cap: int = 5_000
    faults: Optional[Union[FaultPlan, str]] = None
    fault_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.join_day < self.n_days:
            raise ConfigError(
                f"join_day must fall inside the window, got {self.join_day}"
            )
        if not 0.0 < self.message_scale <= 1.0:
            raise ConfigError(
                f"message_scale must be in (0, 1], got {self.message_scale}"
            )
        if isinstance(self.faults, str):
            object.__setattr__(
                self, "faults", FaultPlan.profile(self.faults)
            )

    def world_config(self) -> WorldConfig:
        """The world configuration implied by this study config."""
        return WorldConfig(
            seed=self.seed,
            n_days=self.n_days,
            scale=self.scale,
            control_sample_rate=self.control_sample_rate,
        )


class Study:
    """One full measurement campaign over a freshly generated world."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self.world = World(self.config.world_config())
        #: The campaign's failure ledger (exported with the dataset).
        self.health = CollectionHealth()
        self._resilience = ResilienceExecutor(
            seed=self.config.seed, health=self.health
        )
        self.injector: Optional[FaultInjector] = None
        if self.config.faults is not None:
            fault_seed = (
                self.config.fault_seed
                if self.config.fault_seed is not None
                else self.config.seed
            )
            self.injector = FaultInjector(
                self.config.faults, seed=fault_seed, health=self.health
            )
        self._search = self._faulty(SearchAPI(self.world.twitter), FaultySearchAPI)
        self._stream = self._faulty(
            StreamingAPI(self.world.twitter), FaultyStreamingAPI
        )
        self.engine = DiscoveryEngine(
            self._search, self._stream, resilience=self._resilience
        )
        self._hasher = PhoneHasher(salt=f"study-{self.config.seed}")
        whatsapp = self.world.platform("whatsapp")
        telegram = self.world.platform("telegram")
        discord = self.world.platform("discord")
        wa_web: object = WhatsAppWebClient(whatsapp)
        tg_web: object = TelegramWebClient(telegram)
        dc_api: object = DiscordAPI(discord, "dc-monitor")
        if self.injector is not None:
            wa_web = FaultyPreviewClient(wa_web, self.injector, "whatsapp")
            tg_web = FaultyPreviewClient(tg_web, self.injector, "telegram")
            dc_api = FaultyDiscordAPI(dc_api, self.injector)
        self.monitor = MetadataMonitor(
            whatsapp=wa_web,
            telegram=tg_web,
            discord=dc_api,
            hasher=self._hasher,
            resilience=self._resilience,
        )
        self.joiner = GroupJoiner(
            whatsapp,
            telegram,
            discord,
            hasher=self._hasher,
            seed=self.config.seed,
            member_fetch_cap=self.config.member_fetch_cap,
            resilience=self._resilience,
            injector=self.injector,
        )

    def _faulty(self, client, proxy_cls):
        """Wrap ``client`` in its fault proxy when a plan is active."""
        if self.injector is None:
            return client
        return proxy_cls(client, self.injector)

    def run(self) -> StudyDataset:
        """Execute the campaign and return the collected dataset."""
        config = self.config
        dataset = StudyDataset(
            n_days=config.n_days,
            scale=config.scale,
            message_scale=config.message_scale,
        )

        for day in range(config.n_days):
            self.world.generate_day(day)
            self.engine.run_day(day)
            self.monitor.observe_day(day, self.engine.records.values())
            self._collect_control(day, dataset)
            if day == config.join_day:
                self._join(day)

        joined, users = self.joiner.collect(
            until_t=float(config.n_days), message_scale=config.message_scale
        )
        dataset.records = dict(self.engine.records)
        dataset.tweets = dict(self.engine.tweets)
        dataset.snapshots = dict(self.monitor.snapshots)
        dataset.joined = joined
        dataset.users = users
        dataset.health = self.health
        return dataset

    def _collect_control(self, day: int, dataset: StudyDataset) -> None:
        """Sample-stream collection, excluding group-URL tweets.

        The real 1 % sample's contamination by group-URL tweets was
        negligible; our scaled-down background firehose would be
        dominated by them, so they are excluded explicitly (documented
        substitution in DESIGN.md).  A transiently-failing sample
        window is simply lost — exactly what a dropped stream
        connection cost the real campaign.
        """
        try:
            sampled = self._resilience.call(
                "twitter",
                "sample",
                day + 1,
                lambda: self._stream.sample(
                    day, day + 1, rate=self.config.control_sample_rate
                ),
            )
        except TransientError:
            self.health.bump("twitter", day, "missed")
            return
        dataset.control_tweets.extend(
            tweet
            for tweet in sampled
            if not tweet_matches(tweet, DEFAULT_PATTERNS)
        )

    def _join(self, day: int) -> None:
        alive = [
            record
            for record in self.engine.records.values()
            if not self.monitor.is_dead(record.canonical)
        ]
        self.joiner.join_sample(
            alive, self.config.join_targets, join_t=day + 0.99
        )
