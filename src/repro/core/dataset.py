"""The study's collected dataset — input to every analysis.

Everything the analyses of Sections 4-6 consume is normalised into
this container by the orchestrator: the discovery catalogue, the daily
monitor snapshots, the joined-group aggregates, user observations, and
the control tweets.  Raw phone numbers never appear here — only
:class:`~repro.privacy.hashing.HashedPhone` digests (plus the dialing
code, which the paper keeps for the country analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.discovery import URLRecord
from repro.platforms.base import GroupKind, MessageType
from repro.privacy.hashing import HashedPhone
from repro.resilience.health import CollectionHealth
from repro.twitter.model import Tweet

__all__ = ["Snapshot", "JoinedGroupData", "UserObservation", "StudyDataset"]


@dataclass(frozen=True)
class Snapshot:
    """One daily metadata observation of one group URL.

    Attributes:
        canonical: The URL's deduplication key.
        day: Whole-day index of the observation.
        t: Exact observation time.
        alive: False if the landing page showed a revocation notice.
        size: Member count (None when revoked / not exposed).
        online: Online members (Telegram/Discord only).
        title: Group title.
        kind: Chat-room kind, where the platform exposes it.
        creator_dialing_code: WhatsApp: creator's country dialing code.
        creator_phone_hash: WhatsApp: hashed creator phone number.
        creator_id: Discord: creator's user id (API-visible).
        created_t: Discord: server creation time (API-visible).
        state: Extra observation state beyond ``alive``: '' for a
            plain live/revoked observation, 'unknown' when the URL
            never matched any group (a dead snapshot that is *not* a
            revocation), 'missed' when a transient failure prevented
            the observation (an alive snapshot carrying no metadata —
            the monitor re-probes the next day).
    """

    canonical: str
    day: int
    t: float
    alive: bool
    size: Optional[int] = None
    online: Optional[int] = None
    title: str = ""
    kind: Optional[GroupKind] = None
    creator_dialing_code: str = ""
    creator_phone_hash: Optional[HashedPhone] = None
    creator_id: str = ""
    created_t: Optional[float] = None
    state: str = ""

    @property
    def missed(self) -> bool:
        """True if a transient failure prevented this observation."""
        return self.state == "missed"

    @property
    def death_reason(self) -> Optional[str]:
        """Why a dead snapshot is dead: 'revoked' (the landing page
        showed the revocation notice) or 'unknown' (the URL never
        corresponded to a group).  None for live/missed snapshots."""
        if self.alive:
            return None
        return "unknown" if self.state == "unknown" else "revoked"


@dataclass(frozen=True)
class UserObservation:
    """What the pipeline observed about one platform user.

    Attributes:
        platform: Messaging platform.
        user_id: Platform-local user id.
        phone_hash: Hashed phone, if the platform exposed one.
        country: Country derived from the phone's dialing code ('' if
            no phone was exposed).
        linked_accounts: (external platform, handle) pairs (Discord).
        via: How the user was observed ('member_list' or 'poster').
    """

    platform: str
    user_id: str
    phone_hash: Optional[HashedPhone] = None
    country: str = ""
    linked_accounts: Tuple = ()
    via: str = "poster"


@dataclass
class JoinedGroupData:
    """Aggregates collected from one joined group (Section 3.3).

    Message bodies are aggregated at collection time (type counts,
    per-day counts, per-sender counts) so a study over millions of
    messages stays memory-bounded.
    """

    platform: str
    canonical: str
    gid: str
    join_t: float
    kind: Optional[GroupKind] = None
    created_t: Optional[float] = None
    size_at_join: Optional[int] = None
    n_messages: int = 0
    type_counts: Dict[MessageType, int] = field(default_factory=dict)
    daily_counts: Dict[int, int] = field(default_factory=dict)
    sender_counts: Dict[str, int] = field(default_factory=dict)
    member_ids: List[str] = field(default_factory=list)
    member_list_hidden: bool = False
    #: Creator user id, where the platform exposes it post-join.
    creator_id: str = ""

    @property
    def n_senders(self) -> int:
        """Distinct users who posted at least one collected message."""
        return len(self.sender_counts)

    @property
    def observation_days(self) -> float:
        """Days of history the message collection covers."""
        if not self.daily_counts:
            return 0.0
        return float(max(self.daily_counts) - min(self.daily_counts) + 1)


@dataclass
class StudyDataset:
    """The complete output of one measurement campaign."""

    n_days: int
    scale: float
    #: Thinning factor applied to collected message volumes; analyses
    #: divide per-day rates by it to report paper-comparable numbers.
    message_scale: float = 1.0
    #: canonical -> discovery record (URL catalogue).
    records: Dict[str, URLRecord] = field(default_factory=dict)
    #: tweet_id -> tweet, for every collected group-sharing tweet.
    tweets: Dict[int, Tweet] = field(default_factory=dict)
    #: The control dataset (sample-stream tweets, pattern-free).
    control_tweets: List[Tweet] = field(default_factory=list)
    #: canonical -> chronological daily snapshots.
    snapshots: Dict[str, List[Snapshot]] = field(default_factory=dict)
    #: Data from every joined group.
    joined: List[JoinedGroupData] = field(default_factory=list)
    #: (platform, user_id) -> user observation.
    users: Dict[Tuple[str, str], UserObservation] = field(default_factory=dict)
    #: Collection-health ledger (faults, retries, trips, misses); None
    #: for datasets predating the resilience layer.
    health: Optional[CollectionHealth] = None
    #: The scenario pack the campaign ran under (see
    #: :mod:`repro.scenarios`); in-memory only, not serialised.
    scenario: str = "paper-weather"
    #: invite URL -> persona name for groups born inside a scenario
    #: phase (baseline-weather groups have no entry); in-memory only.
    personas: Dict[str, str] = field(default_factory=dict)

    def records_for(self, platform: str) -> List[URLRecord]:
        """Discovery records for one platform."""
        return [r for r in self.records.values() if r.platform == platform]

    def joined_for(self, platform: str) -> List[JoinedGroupData]:
        """Joined-group data for one platform."""
        return [j for j in self.joined if j.platform == platform]

    def users_for(self, platform: str) -> List[UserObservation]:
        """User observations for one platform."""
        return [u for u in self.users.values() if u.platform == platform]

    def tweets_for(self, platform: str) -> List[Tweet]:
        """Distinct collected tweets sharing URLs of one platform.

        Share lists may reference tweets this dataset does not retain
        (partial or streamed datasets); dangling ids are skipped rather
        than escaping as a raw ``KeyError``.
        """
        seen: Dict[int, Tweet] = {}
        for record in self.records_for(platform):
            for tid, _ in record.shares:
                tweet = self.tweets.get(tid)
                if tweet is not None:
                    seen[tid] = tweet
        return list(seen.values())
