"""Store and export integrity: fsck, damage taxonomy, and repair.

A 38-day campaign's run store is the only thing standing between a
crash and 38 lost days — so it must never be *trusted*, only
*verified*.  This package is the verification and healing layer:

* :mod:`~repro.integrity.fsck` — read-only verification of a
  :class:`~repro.checkpoint.RunStore` directory (manifest checksum and
  schema, per-day object digests, gzip health, envelope decode,
  anchor/replay linkage, dangling objects, orphaned temp files) and of
  exported CSV datasets via their ``SHA256SUMS`` sidecar.  Every
  finding carries a :class:`~repro.integrity.fsck.DamageKind` from the
  damage taxonomy in DESIGN.md §11.
* :mod:`~repro.integrity.repair` — opt-in healing: quarantine damaged
  objects, rebuild replay markers, regenerate damaged anchors by
  deterministic replay from the nearest earlier surviving anchor,
  restore a torn manifest from its one-generation backup, and resync
  the checksum sidecar.  ``fsck`` alone never modifies a store.

Surfaced on the CLI as ``repro fsck <dir> [--repair]`` and consumed by
the chaos harness (:mod:`repro.chaos`), which fscks every store it
kills a campaign over.
"""

from repro.integrity.fsck import (
    DamageKind,
    Finding,
    FsckReport,
    fsck_export,
    fsck_path,
    fsck_store,
)
from repro.integrity.repair import RepairAction, RepairReport, repair_store

__all__ = [
    "DamageKind",
    "Finding",
    "FsckReport",
    "RepairAction",
    "RepairReport",
    "fsck_export",
    "fsck_path",
    "fsck_store",
    "repair_store",
]
