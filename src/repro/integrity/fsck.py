"""Read-only integrity verification (the ``fsck`` half).

Verifies everything a run store claims about itself without modifying
a single byte: the manifest parses, matches its checksum sidecar, and
is internally consistent; every day record gunzips, hashes to its
manifest digest, decodes to a valid envelope, and links to a real
anchor; no unreferenced objects or orphaned temp files are lying
around.  Exported CSV datasets verify the same way through their
``SHA256SUMS`` sidecar.

The damage taxonomy (:class:`DamageKind`) is deliberately specific —
"truncated gzip" and "flipped bytes" are different post-mortems even
though both make a record unreadable — and every finding names the
offending path, so an operator can go look at the corpse.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.checkpoint.state import (
    decode_day_record,
    decode_day_slice,
    decode_rollup,
)
from repro.checkpoint.store import (
    CHECKPOINT_FORMAT_VERSION,
    MANIFEST_CHECKSUM_NAME,
    MANIFEST_NAME,
    OBJECTS_DIR,
    compress_record,
    summary_digest,
)
from repro.errors import CheckpointError
from repro.io.atomic import TMP_SUFFIX
from repro.io.sums import SHA256SUMS_NAME, file_sha256, parse_sha256sums

__all__ = [
    "DamageKind",
    "Finding",
    "FsckReport",
    "fsck_export",
    "fsck_path",
    "fsck_store",
]


class DamageKind:
    """The damage taxonomy (string constants, stable for reports)."""

    #: Manifest missing, unparseable, or not a JSON object.
    TORN_MANIFEST = "torn-manifest"
    #: Manifest format version this build does not understand.
    MANIFEST_VERSION = "manifest-version"
    #: Manifest bytes disagree with the checksum sidecar (or the
    #: sidecar is missing/unreadable) — some byte, somewhere, flipped.
    MANIFEST_CHECKSUM = "manifest-checksum"
    #: Manifest parses but its fields contradict each other.
    MANIFEST_FIELD = "manifest-field"
    #: A day entry's object file is gone.
    MISSING_OBJECT = "missing-object"
    #: Object gunzips partway then ends: the classic torn write.
    TRUNCATED_GZIP = "truncated-gzip"
    #: Object bytes are damaged: bad gzip data, digest or size mismatch.
    CORRUPT_RECORD = "corrupt-record"
    #: Payload verified but does not decode to a day-record envelope.
    UNDECODABLE_RECORD = "undecodable-record"
    #: Envelope decodes but contradicts the manifest (kind mismatch).
    KIND_MISMATCH = "kind-mismatch"
    #: Replay marker points at a day that is absent or not an anchor.
    MISSING_ANCHOR = "missing-anchor"
    #: Object file no manifest entry references.
    DANGLING_OBJECT = "dangling-object"
    #: Leftover ``*.tmp`` from an interrupted atomic write.
    ORPHAN_TEMP = "orphan-temp"
    #: Export file damaged, missing, or unlisted (SHA256SUMS verify).
    EXPORT_MISMATCH = "export-mismatch"


#: Kinds that make further store analysis meaningless.
_FATAL_KINDS = (DamageKind.TORN_MANIFEST, DamageKind.MANIFEST_VERSION)


@dataclass(frozen=True)
class Finding:
    """One verified piece of damage."""

    kind: str
    detail: str
    path: Optional[str] = None
    day: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "path": self.path,
            "day": self.day,
        }


@dataclass
class FsckReport:
    """Everything one fsck pass established about a directory."""

    target: str
    #: "store" or "export".
    target_kind: str
    findings: List[Finding] = field(default_factory=list)
    days_checked: int = 0
    objects_checked: int = 0
    files_checked: int = 0
    slices_checked: int = 0

    @property
    def ok(self) -> bool:
        """True iff no damage was found."""
        return not self.findings

    @property
    def fatal(self) -> bool:
        """True iff the store could not even be enumerated."""
        return any(f.kind in _FATAL_KINDS for f in self.findings)

    def by_kind(self) -> Dict[str, int]:
        """Damage kind -> occurrence count, sorted by kind."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "target_kind": self.target_kind,
            "ok": self.ok,
            "days_checked": self.days_checked,
            "objects_checked": self.objects_checked,
            "files_checked": self.files_checked,
            "slices_checked": self.slices_checked,
            "findings": [f.to_dict() for f in self.findings],
        }


def _count_findings(report: FsckReport, telemetry) -> FsckReport:
    if telemetry is not None:
        telemetry.count("integrity_fsck_total", kind=report.target_kind)
        for finding in report.findings:
            telemetry.count("integrity_findings_total", kind=finding.kind)
    return report


# -- store verification ------------------------------------------------------


def _read_manifest(
    directory: Path, report: FsckReport
) -> Optional[Dict[str, Any]]:
    """Load + structurally validate the manifest; None if unusable."""
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        report.findings.append(Finding(
            DamageKind.TORN_MANIFEST, "manifest file is missing",
            path=str(manifest_path),
        ))
        return None
    data = manifest_path.read_bytes()
    _check_manifest_checksum(directory, data, report)
    try:
        manifest = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        report.findings.append(Finding(
            DamageKind.TORN_MANIFEST, f"manifest does not parse: {exc}",
            path=str(manifest_path),
        ))
        return None
    if not isinstance(manifest, dict):
        report.findings.append(Finding(
            DamageKind.TORN_MANIFEST,
            f"manifest is {type(manifest).__name__}, not an object",
            path=str(manifest_path),
        ))
        return None
    version = manifest.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        report.findings.append(Finding(
            DamageKind.MANIFEST_VERSION,
            f"format version {version!r} "
            f"(expected {CHECKPOINT_FORMAT_VERSION})",
            path=str(manifest_path),
        ))
        return None
    return manifest


def _check_manifest_checksum(
    directory: Path, data: bytes, report: FsckReport
) -> None:
    sidecar = directory / MANIFEST_CHECKSUM_NAME
    if not sidecar.exists():
        report.findings.append(Finding(
            DamageKind.MANIFEST_CHECKSUM, "checksum sidecar is missing",
            path=str(sidecar),
        ))
        return
    recorded = sidecar.read_text(encoding="utf-8", errors="replace").strip()
    actual = hashlib.sha256(data).hexdigest()
    if recorded != actual:
        report.findings.append(Finding(
            DamageKind.MANIFEST_CHECKSUM,
            f"manifest hashes to {actual[:12]}…, sidecar says "
            f"{recorded[:12]}…",
            path=str(sidecar),
        ))


def _check_manifest_fields(
    manifest: Dict[str, Any], manifest_path: Path, report: FsckReport
) -> Dict[str, Dict[str, Any]]:
    """Cross-check manifest fields; returns the valid day entries."""

    def flag(detail: str, day: Optional[int] = None) -> None:
        report.findings.append(Finding(
            DamageKind.MANIFEST_FIELD, detail,
            path=str(manifest_path), day=day,
        ))

    config = manifest.get("config")
    if not isinstance(config, dict):
        flag("manifest holds no config summary")
    else:
        if summary_digest(config) != manifest.get("config_digest"):
            flag("config_digest does not match the config summary")
        if manifest.get("root_seed") != config.get("seed"):
            flag(
                f"root_seed {manifest.get('root_seed')!r} disagrees "
                f"with config seed {config.get('seed')!r}"
            )
        faults = config.get("faults")
        profile = faults.get("name") if isinstance(faults, dict) else None
        if manifest.get("fault_profile") != profile:
            flag(
                f"fault_profile {manifest.get('fault_profile')!r} "
                f"disagrees with the config's plan {profile!r}"
            )
    anchor_every = manifest.get("anchor_every", 1)
    if not isinstance(anchor_every, int) or anchor_every < 1:
        flag(f"anchor cadence {anchor_every!r} is not a positive integer")

    days = manifest.get("days")
    valid: Dict[str, Dict[str, Any]] = {}
    if not isinstance(days, dict):
        flag(f"days table is {type(days).__name__}, not an object")
        return valid
    for key, entry in days.items():
        try:
            day = int(key)
        except (TypeError, ValueError):
            flag(f"day key {key!r} is not an integer")
            continue
        if not isinstance(entry, dict):
            flag(f"day {day} entry is not an object", day=day)
            continue
        digest = entry.get("digest")
        if (
            not isinstance(digest, str)
            or len(digest) != 64
            or any(c not in "0123456789abcdef" for c in digest)
        ):
            flag(f"day {day} digest {digest!r} is not a SHA-256 hex "
                 "digest", day=day)
            continue
        if entry.get("kind") not in ("anchor", "replay"):
            flag(f"day {day} kind {entry.get('kind')!r} is neither "
                 "'anchor' nor 'replay'", day=day)
            continue
        if not isinstance(entry.get("bytes"), int) or entry["bytes"] < 0:
            flag(f"day {day} payload size {entry.get('bytes')!r} is not "
                 "a non-negative integer", day=day)
            continue
        valid[key] = entry
    return valid


def _check_slice_entries(
    manifest: Dict[str, Any], manifest_path: Path, report: FsckReport
) -> Dict[str, Dict[str, Any]]:
    """Validate the analysis-slice table and rollup entry, if present.

    Returns the valid slice entries keyed by day string, with the
    rollup (if any) under the ``"rollup"`` key — both feed the same
    object-level verification as day records.
    """

    def flag(detail: str, day: Optional[int] = None) -> None:
        report.findings.append(Finding(
            DamageKind.MANIFEST_FIELD, detail,
            path=str(manifest_path), day=day,
        ))

    def entry_ok(entry: Any, kind: str, label: str,
                 day: Optional[int]) -> bool:
        if not isinstance(entry, dict):
            flag(f"{label} entry is not an object", day=day)
            return False
        digest = entry.get("digest")
        if (
            not isinstance(digest, str)
            or len(digest) != 64
            or any(c not in "0123456789abcdef" for c in digest)
        ):
            flag(f"{label} digest {digest!r} is not a SHA-256 hex "
                 "digest", day=day)
            return False
        if entry.get("kind") != kind:
            flag(f"{label} kind {entry.get('kind')!r} is not "
                 f"{kind!r}", day=day)
            return False
        if not isinstance(entry.get("bytes"), int) or entry["bytes"] < 0:
            flag(f"{label} payload size {entry.get('bytes')!r} is not "
                 "a non-negative integer", day=day)
            return False
        return True

    valid: Dict[str, Dict[str, Any]] = {}
    slices = manifest.get("slices")
    if slices is not None:
        if not isinstance(slices, dict):
            flag(f"slices table is {type(slices).__name__}, not an "
                 "object")
        else:
            for key, entry in slices.items():
                try:
                    day = int(key)
                except (TypeError, ValueError):
                    flag(f"slice day key {key!r} is not an integer")
                    continue
                if entry_ok(entry, "slice", f"day {day} slice", day):
                    valid[key] = entry
    rollup = manifest.get("rollup")
    if rollup is not None and entry_ok(rollup, "rollup", "rollup", None):
        valid["rollup"] = rollup
    return valid


def _check_slice_record(
    directory: Path,
    label: str,
    day: Optional[int],
    entry: Dict[str, Any],
    decoder,
    report: FsckReport,
) -> None:
    """Verify one slice/rollup object: gunzip, digest, size, canonical
    recompression, JSON envelope decode."""
    path = directory / OBJECTS_DIR / f"{entry['digest']}.bin.gz"
    if not path.exists():
        report.findings.append(Finding(
            DamageKind.MISSING_OBJECT,
            f"{label} object file is missing",
            path=str(path), day=day,
        ))
        return
    raw = path.read_bytes()
    try:
        with gzip.open(io.BytesIO(raw), "rb") as handle:
            payload = handle.read()
    except EOFError as exc:
        report.findings.append(Finding(
            DamageKind.TRUNCATED_GZIP,
            f"{label} record is truncated: {exc}",
            path=str(path), day=day,
        ))
        return
    except (OSError, zlib.error) as exc:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"{label} record has damaged gzip data: {exc}",
            path=str(path), day=day,
        ))
        return
    actual = hashlib.sha256(payload).hexdigest()
    if actual != entry["digest"]:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"{label} payload hashes to {actual[:12]}…, manifest "
            f"says {entry['digest'][:12]}…",
            path=str(path), day=day,
        ))
        return
    if len(payload) != entry["bytes"]:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"{label} payload is {len(payload)} bytes, manifest "
            f"says {entry['bytes']}",
            path=str(path), day=day,
        ))
        return
    if compress_record(payload) != raw:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"{label} container bytes are not the canonical "
            "compression of the verified payload",
            path=str(path), day=day,
        ))
        return
    try:
        decoder(payload)
    except CheckpointError as exc:
        report.findings.append(Finding(
            DamageKind.UNDECODABLE_RECORD,
            f"{label} record does not decode: {exc}",
            path=str(path), day=day,
        ))


def _check_day_record(
    directory: Path,
    day: int,
    entry: Dict[str, Any],
    days: Dict[str, Dict[str, Any]],
    report: FsckReport,
) -> None:
    path = directory / OBJECTS_DIR / f"{entry['digest']}.bin.gz"
    if not path.exists():
        report.findings.append(Finding(
            DamageKind.MISSING_OBJECT,
            f"day {day} object file is missing",
            path=str(path), day=day,
        ))
        return
    raw = path.read_bytes()
    try:
        with gzip.open(io.BytesIO(raw), "rb") as handle:
            payload = handle.read()
    except EOFError as exc:
        report.findings.append(Finding(
            DamageKind.TRUNCATED_GZIP,
            f"day {day} record is truncated: {exc}",
            path=str(path), day=day,
        ))
        return
    except (OSError, zlib.error) as exc:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"day {day} record has damaged gzip data: {exc}",
            path=str(path), day=day,
        ))
        return
    actual = hashlib.sha256(payload).hexdigest()
    if actual != entry["digest"]:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"day {day} payload hashes to {actual[:12]}…, manifest "
            f"says {entry['digest'][:12]}…",
            path=str(path), day=day,
        ))
        return
    if len(payload) != entry["bytes"]:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"day {day} payload is {len(payload)} bytes, manifest "
            f"says {entry['bytes']}",
            path=str(path), day=day,
        ))
        return
    # Objects are written canonically (compress_record: mtime 0, fixed
    # level), so the container file is a pure function of the payload.
    # Recompressing and comparing catches flips in the gzip *header*
    # (MTIME/XFL/OS bytes), which neither the CRC nor the payload
    # digest covers — without it, six bytes per object would be
    # silently flippable.
    if compress_record(payload) != raw:
        report.findings.append(Finding(
            DamageKind.CORRUPT_RECORD,
            f"day {day} container bytes are not the canonical "
            "compression of the verified payload",
            path=str(path), day=day,
        ))
        return
    try:
        record = decode_day_record(payload)
    except CheckpointError as exc:
        report.findings.append(Finding(
            DamageKind.UNDECODABLE_RECORD,
            f"day {day} record does not decode: {exc}",
            path=str(path), day=day,
        ))
        return
    if record["kind"] != entry["kind"]:
        report.findings.append(Finding(
            DamageKind.KIND_MISMATCH,
            f"day {day} payload is a {record['kind']} record, manifest "
            f"says {entry['kind']}",
            path=str(path), day=day,
        ))
        return
    if record["kind"] == "replay":
        anchor_day = record["anchor_day"]
        anchor = days.get(str(anchor_day))
        if anchor_day >= day or anchor is None or anchor["kind"] != "anchor":
            report.findings.append(Finding(
                DamageKind.MISSING_ANCHOR,
                f"day {day} marker defers to day {anchor_day}, which "
                "is not an earlier anchor snapshot",
                path=str(path), day=day,
            ))


def _check_debris(
    directory: Path,
    days: Dict[str, Dict[str, Any]],
    slices: Dict[str, Dict[str, Any]],
    report: FsckReport,
) -> None:
    objects_dir = directory / OBJECTS_DIR
    referenced = {entry["digest"] for entry in days.values()}
    referenced.update(entry["digest"] for entry in slices.values())
    if objects_dir.is_dir():
        for path in sorted(objects_dir.glob("*.bin.gz")):
            report.objects_checked += 1
            if path.name[: -len(".bin.gz")] not in referenced:
                report.findings.append(Finding(
                    DamageKind.DANGLING_OBJECT,
                    "object file is referenced by no day entry",
                    path=str(path),
                ))
    for path in sorted(directory.rglob(f"*{TMP_SUFFIX}")):
        report.findings.append(Finding(
            DamageKind.ORPHAN_TEMP,
            "leftover temp file from an interrupted write",
            path=str(path),
        ))


def fsck_store(
    directory: Union[str, os.PathLike], telemetry=None
) -> FsckReport:
    """Verify a run store directory; read-only, returns the report."""
    directory = Path(directory)
    report = FsckReport(target=str(directory), target_kind="store")
    manifest = _read_manifest(directory, report)
    if manifest is None:
        return _count_findings(report, telemetry)
    days = _check_manifest_fields(
        manifest, directory / MANIFEST_NAME, report
    )
    slices = _check_slice_entries(
        manifest, directory / MANIFEST_NAME, report
    )
    for key in sorted(days, key=int):
        report.days_checked += 1
        _check_day_record(directory, int(key), days[key], days, report)
    for key in sorted(
        (k for k in slices if k != "rollup"), key=int
    ):
        report.slices_checked += 1
        _check_slice_record(
            directory, f"day {key} slice", int(key), slices[key],
            decode_day_slice, report,
        )
    if "rollup" in slices:
        report.slices_checked += 1
        _check_slice_record(
            directory, "rollup", None, slices["rollup"],
            decode_rollup, report,
        )
    _check_debris(directory, days, slices, report)
    return _count_findings(report, telemetry)


# -- export verification -----------------------------------------------------


def fsck_export(
    directory: Union[str, os.PathLike], telemetry=None
) -> FsckReport:
    """Verify an exported CSV dataset against its ``SHA256SUMS``."""
    directory = Path(directory)
    report = FsckReport(target=str(directory), target_kind="export")
    sums_path = directory / SHA256SUMS_NAME

    def flag(detail: str, path: Path) -> None:
        report.findings.append(Finding(
            DamageKind.EXPORT_MISMATCH, detail, path=str(path)
        ))

    if not sums_path.exists():
        flag("SHA256SUMS manifest is missing", sums_path)
        return _count_findings(report, telemetry)
    try:
        sums = parse_sha256sums(sums_path)
    except (ValueError, UnicodeDecodeError) as exc:
        flag(f"SHA256SUMS does not parse: {exc}", sums_path)
        return _count_findings(report, telemetry)
    for name, digest in sorted(sums.items()):
        path = directory / name
        report.files_checked += 1
        if not path.exists():
            flag(f"listed file {name} is missing", path)
            continue
        actual = file_sha256(path)
        if actual != digest:
            flag(
                f"{name} hashes to {actual[:12]}…, manifest says "
                f"{digest[:12]}…",
                path,
            )
    for path in sorted(directory.glob("*.csv")):
        if path.name not in sums:
            flag(f"{path.name} is not listed in SHA256SUMS", path)
    for path in sorted(directory.glob(f"*{TMP_SUFFIX}")):
        report.findings.append(Finding(
            DamageKind.ORPHAN_TEMP,
            "leftover temp file from an interrupted write",
            path=str(path),
        ))
    return _count_findings(report, telemetry)


def fsck_path(
    target: Union[str, os.PathLike], telemetry=None
) -> FsckReport:
    """Verify ``target``, auto-detecting run store vs CSV export."""
    target = Path(target)
    if (target / MANIFEST_NAME).exists():
        return fsck_store(target, telemetry=telemetry)
    if (target / SHA256SUMS_NAME).exists():
        return fsck_export(target, telemetry=telemetry)
    raise CheckpointError(
        f"{target} holds neither a run-store manifest ({MANIFEST_NAME}) "
        f"nor an export manifest ({SHA256SUMS_NAME})"
    )
