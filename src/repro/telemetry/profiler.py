"""Per-phase profiler: spans rolled up into a stage-level time budget.

The question an operator asks of a 38-day campaign is not "how long
did call #4812 take" but "where did the time go — discovery, the
monitor sweep, the join day, analysis, or checkpointing?".  The
:class:`Profiler` answers it by aggregating the tracer's *top-level*
spans (nested spans are already counted inside their parents) into
one :class:`StageBudget` per pipeline stage: span count, total
wall-clock seconds, and share of the campaign's total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.tracer import Tracer

__all__ = ["Profiler", "StageBudget", "STAGE_ORDER"]

#: Canonical reporting order for the pipeline's stages; stages not
#: listed here (from ad-hoc instrumentation) sort after, alphabetically.
STAGE_ORDER = (
    "world",
    "discovery",
    "monitor",
    "control",
    "join",
    "analysis",
    "checkpoint",
    "restore",
)


@dataclass(frozen=True)
class StageBudget:
    """Aggregated wall-clock budget for one pipeline stage."""

    stage: str
    spans: int
    wall_s: float
    share: float  # fraction of the total top-level wall time

    @property
    def mean_s(self) -> float:
        """Mean wall-clock seconds per span."""
        return self.wall_s / self.spans if self.spans else 0.0


class Profiler:
    """Rolls a tracer's spans up into a stage-level time budget."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    def total_wall_s(self) -> float:
        """Total wall-clock seconds across all top-level spans."""
        return sum(s.wall_s for s in self._tracer.top_level())

    def stage_budget(self) -> List[StageBudget]:
        """One budget row per stage, in :data:`STAGE_ORDER`."""
        wall: Dict[str, float] = {}
        count: Dict[str, int] = {}
        for span in self._tracer.top_level():
            wall[span.stage] = wall.get(span.stage, 0.0) + span.wall_s
            count[span.stage] = count.get(span.stage, 0) + 1
        total = sum(wall.values())
        known = [s for s in STAGE_ORDER if s in wall]
        extra = sorted(s for s in wall if s not in STAGE_ORDER)
        return [
            StageBudget(
                stage=stage,
                spans=count[stage],
                wall_s=wall[stage],
                share=wall[stage] / total if total else 0.0,
            )
            for stage in known + extra
        ]

    def stage_wall_s(self, stage: str) -> float:
        """Total top-level wall-clock seconds spent in one stage."""
        return sum(
            s.wall_s for s in self._tracer.top_level() if s.stage == stage
        )

    def days_covered(self, life: Optional[int] = None) -> List[int]:
        """Distinct campaign days with at least one span, ascending.

        With ``life`` given, only spans executed by that process life
        count — the cumulative-telemetry tests use this to prove a
        resumed campaign's trace spans both lives.
        """
        return sorted(
            {
                s.day
                for s in self._tracer.spans
                if s.day is not None and (life is None or s.life == life)
            }
        )
