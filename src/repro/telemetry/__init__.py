"""repro.telemetry — campaign observability: metrics, spans, profiling.

The subsystem the operators of a 38-day collection campaign stare at
every morning: where the time went, what failed, what the retry layer
absorbed, and how big the checkpoints are getting.  Zero external
dependencies, off by default, RNG-clean by construction (only
``time.perf_counter`` is ever read), and checkpoint-durable — the
whole handle pickles with the study, so a resumed campaign reports
cumulative telemetry spanning every process life.

Layout:

* :mod:`~repro.telemetry.registry` — counters / gauges / histograms.
* :mod:`~repro.telemetry.tracer` — nested spans on the dual clock
  (simulated campaign day + wall-clock seconds).
* :mod:`~repro.telemetry.profiler` — spans rolled up into a per-stage
  time budget.
* :mod:`~repro.telemetry.handle` — the single :class:`Telemetry`
  handle threaded through every pipeline layer.
* :mod:`~repro.telemetry.exporters` — JSONL event log + Prometheus
  text format (the plain-text report renders in
  :mod:`repro.reporting.telemetry`).

Each supervision layer threads its own counter family through the
handle: the worker pool's ``parallel_*`` counters
(:mod:`repro.parallel.supervisor`) and the sweep fleet's ``fleet_*``
counters — cells started / completed / retried / failed / skipped,
losses by reason, simulated restart-backoff seconds, and ledger
writes (:mod:`repro.fleet.runner`).
"""

from repro.telemetry.exporters import (
    JSONL_NAME,
    PROMETHEUS_NAME,
    REPORT_NAME,
    export_jsonl,
    export_prometheus,
    export_telemetry,
    render_prometheus,
    render_prometheus_registry,
    telemetry_events,
)
from repro.telemetry.handle import Telemetry
from repro.telemetry.profiler import Profiler, StageBudget, STAGE_ORDER
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    HistogramData,
    MetricsRegistry,
)
from repro.telemetry.tracer import SpanRecord, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramData",
    "JSONL_NAME",
    "MetricsRegistry",
    "PROMETHEUS_NAME",
    "Profiler",
    "REPORT_NAME",
    "STAGE_ORDER",
    "SpanRecord",
    "StageBudget",
    "Telemetry",
    "Tracer",
    "export_jsonl",
    "export_prometheus",
    "export_telemetry",
    "render_prometheus",
    "render_prometheus_registry",
    "telemetry_events",
]
