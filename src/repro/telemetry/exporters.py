"""Telemetry exporters: JSONL event log and Prometheus text format.

Two machine-readable views of one campaign's telemetry:

* :func:`export_jsonl` — a chronological event log: one ``meta`` line,
  then every completed span in completion order, then every metric
  series in sorted order.  Each line is one self-contained JSON
  object, so the file streams into ``jq``/pandas without framing.
* :func:`export_prometheus` — the standard text exposition format
  (``# TYPE`` headers, ``name{labels} value`` samples), every name
  prefixed ``repro_``, suitable for ``promtool`` or a file-based
  scrape.

Both exporters write through the shared atomic-write discipline
(:mod:`repro.io.atomic`: same-dir temp file, fsync, rename) so a
crash while exporting never leaves a half-written artefact.  The
plain-text per-stage report lives in :mod:`repro.reporting.telemetry`,
next to the health report.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Union

from repro.io.atomic import atomic_write_text as _atomic_write_text
from repro.telemetry.handle import Telemetry

__all__ = [
    "JSONL_NAME",
    "PROMETHEUS_NAME",
    "REPORT_NAME",
    "export_jsonl",
    "export_prometheus",
    "export_telemetry",
    "render_prometheus",
    "render_prometheus_registry",
    "telemetry_events",
]

#: Canonical file names inside a ``--telemetry-dir``.
JSONL_NAME = "telemetry.jsonl"
PROMETHEUS_NAME = "metrics.prom"
REPORT_NAME = "report.txt"

#: Prefix applied to every exported metric name.
_PREFIX = "repro_"


# -- JSONL -----------------------------------------------------------------

def telemetry_events(telemetry: Telemetry) -> Iterator[Dict[str, object]]:
    """Every telemetry event as a JSON-ready dict, in export order."""
    yield {
        "event": "meta",
        "process_lives": telemetry.process_lives,
        "n_spans": len(telemetry.tracer),
        "n_series": len(telemetry.metrics),
    }
    for span in telemetry.tracer.spans:
        event = span.to_dict()
        event["event"] = "span"
        yield event
    for kind, name, labels, value in telemetry.metrics.series():
        event: Dict[str, object] = {
            "event": kind,
            "name": name,
            "labels": dict(labels),
        }
        if kind == "histogram":
            event.update(value.to_dict())  # type: ignore[union-attr]
        else:
            event["value"] = value
        yield event


def export_jsonl(
    telemetry: Telemetry, path: Union[str, os.PathLike]
) -> Path:
    """Write the JSONL event log to ``path``; returns the path."""
    path = Path(path)
    lines = [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in telemetry_events(telemetry)
    ]
    _atomic_write_text(path, "\n".join(lines) + "\n")
    return path


# -- Prometheus text format ------------------------------------------------

def _escape_label_value(value: str) -> str:
    # Exposition-format label escapes: backslash first, then the quote
    # and newline, exactly as promtool expects.
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    # NaN first: every comparison against it is False, and
    # ``is_integer`` would mis-render it.  The exposition format
    # spells the specials +Inf / -Inf / NaN, case-sensitively.
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus_registry(metrics, process_lives: int) -> str:
    """A bare :class:`~repro.telemetry.registry.MetricsRegistry` in
    Prometheus text exposition format.

    The single rendering path behind both :func:`export_prometheus`
    (file export) and the serve daemon's ``/metrics`` scrape endpoint
    (:mod:`repro.serve`), so the two outputs are byte-identical for
    the same registry state by construction.
    """
    lines = []
    seen_types: set = set()
    for kind, name, labels, value in metrics.series():
        full = _PREFIX + name
        if full not in seen_types:
            seen_types.add(full)
            lines.append(f"# TYPE {full} {kind}")
        if kind == "histogram":
            for le, count in value.cumulative_buckets():
                bucket_labels = tuple(labels) + (("le", _format_value(le)),)
                lines.append(
                    f"{full}_bucket{_format_labels(bucket_labels)} {count}"
                )
            lines.append(
                f"{full}_sum{_format_labels(labels)} "
                f"{_format_value(value.total)}"
            )
            lines.append(
                f"{full}_count{_format_labels(labels)} {value.count}"
            )
        else:
            lines.append(
                f"{full}{_format_labels(labels)} {_format_value(value)}"
            )
    lines.append(
        f"{_PREFIX}process_lives {process_lives}"
    )
    return "\n".join(lines) + "\n"


def render_prometheus(telemetry: Telemetry) -> str:
    """The registry in Prometheus text exposition format."""
    return render_prometheus_registry(
        telemetry.metrics, telemetry.process_lives
    )


def export_prometheus(
    telemetry: Telemetry, path: Union[str, os.PathLike]
) -> Path:
    """Write the Prometheus text file to ``path``; returns the path."""
    path = Path(path)
    _atomic_write_text(path, render_prometheus(telemetry))
    return path


# -- directory export ------------------------------------------------------

def export_telemetry(
    telemetry: Telemetry,
    directory: Union[str, os.PathLike],
    report: str = "",
) -> Dict[str, Path]:
    """Write every telemetry artefact into ``directory``.

    Emits the JSONL event log and the Prometheus file always, plus
    ``report.txt`` when the caller passes the rendered plain-text
    report (rendering lives in :mod:`repro.reporting.telemetry`,
    which this module must not import).  Returns name -> path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "jsonl": export_jsonl(telemetry, directory / JSONL_NAME),
        "prometheus": export_prometheus(
            telemetry, directory / PROMETHEUS_NAME
        ),
    }
    if report:
        report_path = directory / REPORT_NAME
        _atomic_write_text(
            report_path, report if report.endswith("\n") else report + "\n"
        )
        paths["report"] = report_path
    return paths
