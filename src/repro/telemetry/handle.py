"""The single Telemetry handle threaded through the pipeline.

One :class:`Telemetry` object is created by the study and shared —
the same way the fault injector and the health ledger are — by every
layer that wants to report: the Twitter API simulators, the three
platform services, discovery, the monitor, the joiner, the resilience
executor and its breakers, and the checkpoint store.  It bundles a
:class:`~repro.telemetry.registry.MetricsRegistry` and a
:class:`~repro.telemetry.tracer.Tracer` behind no-op-when-disabled
methods, so instrumentation at a call site is one unconditional call.

Hard invariants:

* **Off by default.**  A study built without ``--telemetry-dir`` (or
  ``Telemetry(enabled=True)``) records nothing; every method returns
  immediately after one flag check.
* **Never touches any seeded RNG stream.**  The handle reads only
  :func:`time.perf_counter`; enabling telemetry cannot change a
  single sampled value, so exported datasets are byte-identical with
  telemetry on or off.
* **Survives checkpoint resume.**  The handle hangs off the study
  object graph, so anchors carry it and a restored campaign keeps
  accumulating into the same counters and span log (the tracer bumps
  its process-life counter on restore).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import ContextManager, Optional

from repro.telemetry.profiler import Profiler
from repro.telemetry.registry import HistogramData, MetricsRegistry
from repro.telemetry.tracer import Tracer

__all__ = ["Telemetry"]

#: Shared no-op context manager returned by ``span()`` when disabled
#: (``nullcontext`` keeps no per-use state, so one instance is safe).
_NULL_SPAN: ContextManager = nullcontext()


class Telemetry:
    """Metrics + tracing behind one enable flag."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "Telemetry":
        """Turn recording on (idempotent); returns self for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        """Turn recording off; accumulated data is kept."""
        self.enabled = False
        return self

    @property
    def process_lives(self) -> int:
        """How many processes have executed this campaign so far."""
        return self.tracer.life

    # -- recording ---------------------------------------------------------

    def clock(self) -> float:
        """A wall-clock reading for externally timed regions.

        Lives here so instrumented packages (notably the resilience
        layer, whose sources are grepped for wall-clock calls by the
        determinism guard) never read the clock themselves: the only
        :func:`time.perf_counter` call sites are in this package, and
        the reading feeds telemetry exclusively — never behaviour.
        Returns 0.0 while disabled so the hot path skips the syscall.
        """
        return time.perf_counter() if self.enabled else 0.0

    def count(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment a counter (no-op while disabled)."""
        if self.enabled:
            self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge (no-op while disabled)."""
        if self.enabled:
            self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Fold a value into a histogram (no-op while disabled)."""
        if self.enabled:
            self.metrics.observe(name, value, **labels)

    def span(
        self, name: str, *, stage: str, day: Optional[int] = None,
        **labels: str,
    ) -> ContextManager:
        """A timed span context (shared no-op context while disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return self.tracer.span(name, stage=stage, day=day, **labels)

    def record_span(
        self,
        name: str,
        *,
        stage: str,
        wall_s: float,
        day: Optional[int] = None,
        **labels: str,
    ) -> None:
        """Record an externally timed span (no-op while disabled)."""
        if self.enabled:
            self.tracer.record(
                name, stage=stage, wall_s=wall_s, day=day, **labels
            )

    # -- reading -----------------------------------------------------------

    def profiler(self) -> Profiler:
        """A profiler over this handle's trace."""
        return Profiler(self.tracer)

    def histogram(self, name: str, **labels: str) -> Optional[HistogramData]:
        """Shortcut to :meth:`MetricsRegistry.histogram`."""
        return self.metrics.histogram(name, **labels)
