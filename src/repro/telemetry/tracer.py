"""Span tracing on the dual clock: campaign day + wall-clock seconds.

A campaign runs on two clocks at once — the *simulated* calendar the
paper's 38-day window lives on, and the *wall clock* the operator
pays for.  Every :class:`SpanRecord` is stamped with both: the
campaign day it covers and the wall-clock seconds it took, plus the
process life that executed it (a resumed campaign is life 2 of the
same logical run).

Spans nest: the tracer keeps an active-span stack so a span opened
inside another records its parent.  The stack is transient by
construction — it is dropped on pickling (checkpoint anchors are
written at day boundaries, outside any span, and a restored tracer
must never resurrect a stale open span) while the completed-span
list rides along, so cumulative traces survive process death.

Wall-clock stamps come from :func:`time.perf_counter` only; the
tracer never reads any seeded RNG stream, so tracing cannot perturb
the campaign.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        span_id: Monotonic id, unique within the campaign (all lives).
        parent_id: Enclosing span's id (None for a top-level span).
        name: What ran (e.g. ``discovery.run_day``).
        stage: Pipeline stage the span belongs to (``discovery``,
            ``monitor``, ``join``, ``checkpoint``, ...): the key the
            profiler rolls the time budget up by.
        day: Simulated campaign day the span covers (None for spans
            outside the day loop, e.g. a checkpoint restore).
        wall_s: Wall-clock duration in seconds.
        life: Process life that executed the span (1 = the original
            process; each checkpoint restore starts a new life).
        labels: Extra dimensions, sorted ``(key, value)`` pairs.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    stage: str
    day: Optional[int]
    wall_s: float
    life: int
    labels: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (one JSONL event)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "stage": self.stage,
            "day": self.day,
            "wall_s": self.wall_s,
            "life": self.life,
            "labels": dict(self.labels),
        }


class _ActiveSpan:
    """Context manager for one in-flight span."""

    __slots__ = ("_tracer", "_name", "_stage", "_day", "_labels", "_span_id", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        stage: str,
        day: Optional[int],
        labels: Dict[str, str],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._stage = stage
        self._day = day
        self._labels = labels
        self._span_id: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._span_id = self._tracer._open()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall_s = time.perf_counter() - self._start
        self._tracer._close(
            self._span_id, self._name, self._stage, self._day, wall_s,
            self._labels,
        )


@dataclass
class Tracer:
    """Records nested spans; survives pickling with its stack dropped."""

    #: Completed spans, in completion order (a chronological event log).
    spans: List[SpanRecord] = field(default_factory=list)
    #: Current process life (bumped every time the tracer is restored
    #: from a checkpoint, so spans carry which life executed them).
    life: int = 1
    _next_id: int = 1
    _stack: List[int] = field(default_factory=list)

    def span(
        self, name: str, *, stage: str, day: Optional[int] = None,
        **labels: str,
    ) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, stage, day, labels)

    def record(
        self,
        name: str,
        *,
        stage: str,
        wall_s: float,
        day: Optional[int] = None,
        **labels: str,
    ) -> SpanRecord:
        """Record an already-measured span without opening a context.

        Used where the timed region must not hold an open span — the
        checkpoint writer pickles the whole study (tracer included)
        *inside* the region it times, and an open span must never be
        captured into an anchor.
        """
        span_id = self._next_id
        self._next_id += 1
        record = SpanRecord(
            span_id=span_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            stage=stage,
            day=day,
            wall_s=wall_s,
            life=self.life,
            labels=tuple(sorted((k, str(v)) for k, v in labels.items())),
        )
        self.spans.append(record)
        return record

    # -- internals used by _ActiveSpan -------------------------------------

    def _open(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        self._stack.append(span_id)
        return span_id

    def _close(
        self,
        span_id: int,
        name: str,
        stage: str,
        day: Optional[int],
        wall_s: float,
        labels: Dict[str, str],
    ) -> None:
        self._stack.pop()
        self.spans.append(
            SpanRecord(
                span_id=span_id,
                parent_id=self._stack[-1] if self._stack else None,
                name=name,
                stage=stage,
                day=day,
                wall_s=wall_s,
                life=self.life,
                labels=tuple(
                    sorted((k, str(v)) for k, v in labels.items())
                ),
            )
        )

    # -- queries -----------------------------------------------------------

    def top_level(self) -> Iterator[SpanRecord]:
        """Spans with no parent (the profiler's aggregation input)."""
        return (s for s in self.spans if s.parent_id is None)

    def __len__(self) -> int:
        return len(self.spans)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_stack"] = []  # open spans never survive a checkpoint
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        # Restoring a checkpoint starts a new process life.
        self.life += 1
