"""Labelled metrics: counters, gauges, and histograms.

:class:`MetricsRegistry` is the numeric half of the telemetry
subsystem: a flat store of time series keyed by metric name plus a
(sorted) label set, holding monotonically increasing counters,
last-write-wins gauges, and fixed-bucket histograms.  It is
dependency-free, never touches any RNG, and pickles with the study
object graph so a resumed campaign keeps accumulating into the same
series.

Metric names follow Prometheus conventions (``[a-zA-Z_:][a-zA-Z0-9_:]*``,
``_total`` suffix on counters, ``_seconds`` on durations) so the
Prometheus exporter can emit them verbatim.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["DEFAULT_BUCKETS", "HistogramData", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram bucket upper bounds, in seconds: the pipeline's
#: individual calls run from sub-millisecond simulator lookups to
#: multi-second checkpoint writes.  (+Inf is implicit.)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A series key: (metric name, sorted (label, value) pairs).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class HistogramData:
    """Aggregated observations for one histogram series."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def merge(self, other: "HistogramData") -> None:
        """Fold another histogram's aggregate into this one.

        Both series must use the same bucket bounds; merging is
        commutative and associative, so folding per-worker histograms
        at a day barrier gives the same aggregate regardless of worker
        count or completion order.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready summary (buckets omitted; count/sum/min/max/mean)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


def _series_key(name: str, labels: Dict[str, str]) -> SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by name + labels."""

    def __init__(self) -> None:
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._histograms: Dict[SeriesKey, HistogramData] = {}
        self._checked_names: set = set()

    def _check_name(self, name: str) -> None:
        if name in self._checked_names:
            return
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self._checked_names.add(name)

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Add ``value`` (>= 0) to the counter series."""
        self._check_name(name)
        if value < 0:
            raise ValueError(f"counter {name} cannot decrease (got {value})")
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the gauge series to ``value`` (last write wins)."""
        self._check_name(name)
        self._gauges[_series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Fold ``value`` into the histogram series."""
        self._check_name(name)
        key = _series_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = HistogramData()
        hist.observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        The merge barrier of the parallel engine: each worker records
        into a private registry, and the parent folds them in at the
        day boundary.  Counters add, gauges are last-write-wins (the
        incoming value overwrites, matching ``set_gauge``), histograms
        fold bucket-by-bucket via :meth:`HistogramData.merge`.  The
        incoming registry is left untouched.
        """
        for key, value in other._counters.items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        for key, value in other._gauges.items():
            self._gauges[key] = value
        for key, hist in other._histograms.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = HistogramData(hist.bounds)
            mine.merge(hist)
        self._checked_names.update(other._checked_names)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str, **labels: str) -> float:
        """Current counter value (0.0 if never incremented)."""
        return self._counters.get(_series_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across every label combination."""
        return sum(
            value for (n, _), value in self._counters.items() if n == name
        )

    def gauge(self, name: str, **labels: str) -> Optional[float]:
        """Current gauge value (None if never set)."""
        return self._gauges.get(_series_key(name, labels))

    def histogram(self, name: str, **labels: str) -> Optional[HistogramData]:
        """The histogram series (None if never observed)."""
        return self._histograms.get(_series_key(name, labels))

    def series(self) -> Iterator[Tuple[str, str, Tuple[Tuple[str, str], ...], object]]:
        """Every series as ``(kind, name, labels, value)``, sorted.

        Counters and gauges yield floats; histograms yield their
        :class:`HistogramData`.  The ordering is deterministic so
        exports of the same campaign state are byte-identical.
        """
        for key in sorted(self._counters):
            yield "counter", key[0], key[1], self._counters[key]
        for key in sorted(self._gauges):
            yield "gauge", key[0], key[1], self._gauges[key]
        for key in sorted(self._histograms):
            yield "histogram", key[0], key[1], self._histograms[key]

    def __len__(self) -> int:
        """Number of live series across all three kinds."""
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def to_dict(self) -> Dict[str, List[Dict[str, object]]]:
        """JSON-ready dump with deterministically ordered series."""
        out: Dict[str, List[Dict[str, object]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for kind, name, labels, value in self.series():
            entry: Dict[str, object] = {"name": name, "labels": dict(labels)}
            if kind == "histogram":
                entry.update(value.to_dict())  # type: ignore[union-attr]
            else:
                entry["value"] = value
            out[kind + "s"].append(entry)
        return out
