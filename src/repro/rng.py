"""Deterministic random-number utilities.

The whole simulation must be reproducible from a single integer seed, and
large parts of the world (message histories, member rosters, user
profiles) are materialised *lazily*, on first access, long after the seed
was consumed.  To keep laziness and determinism compatible, every lazy
object derives its own :class:`numpy.random.Generator` from the study
seed plus a stable string key (e.g. ``"whatsapp/group/WA00042/messages"``)
rather than drawing from a shared stream whose state would depend on
access order.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng", "stable_hash", "stable_uniform"]

_MASK64 = (1 << 64) - 1


def stable_hash(key: str) -> int:
    """Return a stable 64-bit hash of ``key``.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    for reproducible derivation; this uses BLAKE2b instead.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a child seed from ``root_seed`` and a string ``key``.

    The same (seed, key) pair always yields the same child seed, and
    distinct keys yield (with overwhelming probability) distinct seeds.
    """
    return (stable_hash(key) ^ (root_seed * 0x9E3779B97F4A7C15)) & _MASK64


def derive_rng(root_seed: int, key: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for (``root_seed``, ``key``)."""
    return np.random.default_rng(derive_seed(root_seed, key))


def stable_uniform(key: str, salt: str = "") -> float:
    """Map a string key to a uniform float in [0, 1).

    Used to make per-item coin flips (e.g. "is this tweet indexed by the
    Search API?") that are stable across repeated queries: the same tweet
    id always lands on the same side of the threshold.
    """
    return stable_hash(salt + "|" + key) / float(1 << 64)
