"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Platform simulators raise the
more specific subclasses to mirror the failure modes the paper's data
collection encountered (revoked invite URLs, join limits, API access
restrictions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A study or simulation configuration value is invalid."""


class DatasetError(ReproError, ValueError):
    """A persisted dataset could not be read.

    Raised by :func:`repro.io.load_dataset` for truncated or corrupt
    JSON/gzip input and for unsupported format versions; the message
    always names the offending path.  Subclasses :class:`ValueError`
    for backward compatibility with callers that caught the original
    version-check error.
    """


class CheckpointError(ReproError):
    """A campaign run store (checkpoint directory) is unusable.

    Raised by :mod:`repro.checkpoint` for missing or unreadable
    manifests, unsupported checkpoint format versions, day records
    whose content digest does not match the manifest, and
    resume/fork requests outside the checkpointed day range.
    """


class ParallelError(ReproError):
    """The parallel execution engine failed.

    Raised by :mod:`repro.parallel` when a worker process dies, sends
    an unexpected reply, or the merge step finds a probe outcome
    missing — conditions that would otherwise silently desynchronise
    the sharded and sequential paths.  The message carries the worker
    traceback when one exists.
    """


class UnknownURLError(ReproError):
    """An invite URL does not correspond to any group on the platform."""


class RevokedURLError(ReproError):
    """The invite URL exists but has been revoked.

    Mirrors the landing page "revocation notice" the paper describes:
    once revoked, no metadata beyond the revocation itself is visible.
    """


class JoinLimitError(ReproError):
    """The account hit the platform's limit on number of joined groups."""


class GroupFullError(ReproError):
    """The group is at its member cap and accepts no new members.

    The paper notes WhatsApp groups "become full, hence not shared on
    Twitter to attract more members" — a full group's invite link still
    resolves, but joining fails.
    """


class NotAMemberError(ReproError):
    """The requested data is only visible to members of the group."""


class MemberListHiddenError(ReproError):
    """Group administrators hid the member list (Telegram feature)."""


class BotRestrictionError(ReproError):
    """Discord forbids bots from joining servers on their own."""


class TransientError(ReproError):
    """A temporary failure: the same call may succeed if retried later.

    The resilience layer (:mod:`repro.resilience`) retries these with
    backoff; a transient failure must never be mistaken for a
    revocation.
    """


class APIRateLimitError(TransientError):
    """The platform API rejected the call due to rate limiting."""


class NetworkTimeoutError(TransientError):
    """The request timed out before the platform answered."""


class TemporarilyUnavailableError(TransientError):
    """The landing page / endpoint is temporarily unreachable."""


class CircuitOpenError(TransientError):
    """The resilience layer refused the call: the circuit is open.

    Raised without touching the platform; the caller should degrade
    gracefully (e.g. record a missed observation) and retry on a later
    simulated hour, once the breaker half-opens.
    """
