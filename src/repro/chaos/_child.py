"""Subprocess entry point for the chaos harness's SIGKILL mode.

``python -m repro.chaos._child <spec.json>`` runs one checkpointed
campaign and kills its own process — ``SIGKILL``, no cleanup, no
flush — at the abort point named in the spec.  The parent
(:class:`~repro.chaos.runner.ChaosRunner`) verifies the process died
by the expected signal and that the on-disk store it left behind
resumes to a byte-identical campaign.

The spec file is JSON::

    {
      "config": {... StudyConfig kwargs, faults as profile name ...},
      "point":  {"day": 3, "stage": "monitor", "mode": "sigkill"},
      "store":  "/path/to/store",
      "anchor_every": 2,         # optional
      "workers": 2               # optional: run under the worker pool
    }

With ``workers`` > 1 the doomed campaign runs its probe pass through
the supervised worker pool, so the SIGKILL also exercises the pool's
behaviour under parent death (daemon workers die with the parent; the
resumed campaign starts a fresh pool).
"""

from __future__ import annotations

import json
import os
import signal
import sys
from pathlib import Path

from repro.chaos.schedule import AbortPoint
from repro.core.study import Study, StudyConfig


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m repro.chaos._child <spec.json>",
            file=sys.stderr,
        )
        return 2
    spec = json.loads(Path(argv[0]).read_text())
    point = AbortPoint.from_dict(spec["point"])
    study = Study(StudyConfig(**spec["config"]))

    def hook(day: int, stage: str) -> None:
        if day == point.day and stage == point.stage:
            os.kill(os.getpid(), signal.SIGKILL)

    study.stage_hook = hook
    study.run(
        checkpoint_dir=spec["store"],
        anchor_every=spec.get("anchor_every"),
        workers=spec.get("workers") or 1,
    )
    # Reaching here means the scheduled point never fired; the parent
    # treats a clean exit as a harness bug (kill_fired=False).
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
