"""Crash-consistency chaos harness.

The run store (:mod:`repro.checkpoint`) promises that a campaign can
die at any moment and resume byte-identical.  This package *earns*
that promise instead of assuming it:

* :mod:`~repro.chaos.schedule` — seeded, replayable schedules of
  :class:`~repro.chaos.schedule.AbortPoint`\\ s over every stage
  boundary a campaign passes through.
* :mod:`~repro.chaos.runner` — :class:`~repro.chaos.runner.ChaosRunner`
  kills a fresh campaign at each scheduled point (in-process abort or
  real subprocess ``SIGKILL``), resumes it from the surviving store,
  and verifies the full invariant set: byte-identical exports and CSV
  checksums, a consistent health ledger and process-life counter, a
  store that passes :func:`~repro.integrity.fsck_store`, and zero
  orphaned temp files.

Surfaced on the CLI as ``repro chaos`` and wired into CI as a smoke
job (three seeded SIGKILL points under the hostile fault profile).
"""

from repro.chaos.runner import ChaosAbort, ChaosCycle, ChaosReport, ChaosRunner
from repro.chaos.schedule import (
    ABORT_MODES,
    STAGES,
    AbortPoint,
    ChaosSchedule,
)

__all__ = [
    "ABORT_MODES",
    "STAGES",
    "AbortPoint",
    "ChaosAbort",
    "ChaosCycle",
    "ChaosReport",
    "ChaosRunner",
    "ChaosSchedule",
]
