"""Crash-consistency chaos harness.

The run store (:mod:`repro.checkpoint`) promises that a campaign can
die at any moment and resume byte-identical.  This package *earns*
that promise instead of assuming it:

* :mod:`~repro.chaos.schedule` — seeded, replayable schedules of
  :class:`~repro.chaos.schedule.AbortPoint`\\ s over every stage
  boundary a campaign passes through.
* :mod:`~repro.chaos.runner` — :class:`~repro.chaos.runner.ChaosRunner`
  kills a fresh campaign at each scheduled point (in-process abort or
  real subprocess ``SIGKILL``), resumes it from the surviving store,
  and verifies the full invariant set: byte-identical exports and CSV
  checksums, a consistent health ledger and process-life counter, a
  store that passes :func:`~repro.integrity.fsck_store`, and zero
  orphaned temp files.

The harness also adversaries the *supervised worker pool*
(:mod:`repro.parallel.supervisor`): a seeded
:class:`~repro.chaos.schedule.WorkerKillSchedule` of
:class:`~repro.chaos.schedule.WorkerKillPoint`\\ s SIGKILLs one probe
worker right after a day's shards ship — reply outstanding, the worst
moment — and the campaign must *survive* rather than resume: one
process life, byte-identical artefacts, clean store.

Surfaced on the CLI as ``repro chaos`` (``--workers`` /
``--worker-kills`` add supervision cycles) and wired into CI as smoke
jobs (three seeded SIGKILL points under the hostile fault profile,
plus a worker-kill cycle a 2-worker campaign must survive).
"""

from repro.chaos.runner import (
    ChaosAbort,
    ChaosCycle,
    ChaosReport,
    ChaosRunner,
    WorkerKillCycle,
)
from repro.chaos.schedule import (
    ABORT_MODES,
    STAGES,
    AbortPoint,
    ChaosSchedule,
    WorkerKillPoint,
    WorkerKillSchedule,
)

__all__ = [
    "ABORT_MODES",
    "STAGES",
    "AbortPoint",
    "ChaosAbort",
    "ChaosCycle",
    "ChaosReport",
    "ChaosRunner",
    "ChaosSchedule",
    "WorkerKillCycle",
    "WorkerKillPoint",
    "WorkerKillSchedule",
]
