"""The chaos harness: kill a campaign on schedule, resume, verify.

:class:`ChaosRunner` is the executable form of the crash-consistency
contract the run store makes (:mod:`repro.checkpoint`): *dying at any
moment loses at most the current day, and resuming reproduces the
uninterrupted campaign byte for byte*.  The runner first executes one
uninterrupted **golden** campaign and records its artefact digests,
then — for every :class:`~repro.chaos.schedule.AbortPoint` in the
schedule — runs a fresh campaign that is killed at exactly that
point, resumes it from its run store, and checks the invariants:

* the abort actually fired (a schedule that never triggers is a bug);
* the resumed campaign's dataset export is byte-identical to golden;
* the exported CSVs' ``SHA256SUMS`` sidecar matches golden's;
* the health ledger matches golden's exactly;
* the telemetry process-life counter shows exactly the lives the
  cycle used (two when the store was resumed, one for a pre-first-
  checkpoint death that forced a fresh rerun);
* the survivor store passes :func:`~repro.integrity.fsck_store`;
* no orphaned ``*.tmp`` files anywhere in the cycle directory.

Two kill modes: ``abort`` raises :class:`ChaosAbort` in-process (a
clean unwind, cheap — exercises every boundary), ``sigkill`` runs the
campaign in a real subprocess (:mod:`repro.chaos._child`) and lets it
``SIGKILL`` itself at the scheduled point — no atexit, no flush,
nothing — which is the honest simulation of power loss.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.chaos.schedule import (
    AbortPoint,
    ChaosSchedule,
    WorkerKillPoint,
    WorkerKillSchedule,
)
from repro.checkpoint import MANIFEST_NAME, RunStore
from repro.core.study import Study, StudyConfig
from repro.errors import CheckpointError, ReproError
from repro.integrity import fsck_store
from repro.io import export_all_csv, save_dataset
from repro.io.sums import SHA256SUMS_NAME
from repro.procs import child_environ

__all__ = [
    "ChaosAbort",
    "ChaosCycle",
    "ChaosReport",
    "ChaosRunner",
    "WorkerKillCycle",
]


class ChaosAbort(ReproError):
    """Raised by an in-process chaos hook to kill the campaign."""


@dataclass
class ChaosCycle:
    """One kill-resume-verify cycle's outcome."""

    point: AbortPoint
    #: Whether the resume path restored a checkpointed day (False when
    #: the kill predated the first checkpoint and the cycle reran
    #: from scratch — itself a legitimate recovery path).
    resumed: bool = False
    #: Invariant name -> held?  Empty until the cycle verifies.
    invariants: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.invariants) and all(self.invariants.values())

    @property
    def failed(self) -> List[str]:
        return sorted(k for k, held in self.invariants.items() if not held)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "resumed": self.resumed,
            "ok": self.ok,
            "invariants": dict(self.invariants),
        }


@dataclass
class WorkerKillCycle:
    """One worker-kill-heal-verify cycle's outcome.

    Unlike :class:`ChaosCycle` there is no resume: the campaign is
    expected to *survive* the kill — the supervision layer detects the
    dead worker, re-executes its shard in-parent and respawns it — and
    still export byte-identical artefacts in its single process life.
    """

    point: WorkerKillPoint
    #: Invariant name -> held?  Empty until the cycle verifies.
    invariants: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.invariants) and all(self.invariants.values())

    @property
    def failed(self) -> List[str]:
        return sorted(k for k, held in self.invariants.items() if not held)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point.to_dict(),
            "ok": self.ok,
            "invariants": dict(self.invariants),
        }


@dataclass
class ChaosReport:
    """A full chaos run: the golden digests plus every cycle."""

    schedule: ChaosSchedule
    golden_export: str = ""
    cycles: List[ChaosCycle] = field(default_factory=list)
    #: Worker-kill supervision cycles (empty unless the runner was
    #: given a :class:`WorkerKillSchedule`).
    worker_cycles: List[WorkerKillCycle] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        ran = bool(self.cycles) or bool(self.worker_cycles)
        return (
            ran
            and all(c.ok for c in self.cycles)
            and all(c.ok for c in self.worker_cycles)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "golden_export": self.golden_export,
            "schedule": self.schedule.to_dict(),
            "cycles": [c.to_dict() for c in self.cycles],
            "worker_cycles": [c.to_dict() for c in self.worker_cycles],
        }


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class ChaosRunner:
    """Run a campaign through a schedule of deaths and verify recovery.

    ``config_spec`` holds :class:`~repro.core.study.StudyConfig` kwargs
    with ``faults`` as a profile name (or None) — kept as plain data so
    the exact same campaign can be described to the SIGKILL subprocess
    through a JSON spec file.

    ``workers`` > 1 runs every killed/resumed campaign through the
    supervised worker pool (the golden reference stays sequential, so
    each cycle also proves pool output byte-identical to sequential);
    ``worker_kills`` adds supervision cycles on top — one campaign per
    :class:`WorkerKillPoint`, with that worker SIGKILLed mid-probe,
    which must complete without resume and match golden.
    """

    def __init__(
        self,
        config_spec: Dict[str, Any],
        schedule: ChaosSchedule,
        workdir: Union[str, os.PathLike],
        *,
        anchor_every: Optional[int] = None,
        telemetry=None,
        workers: int = 1,
        worker_kills: Optional[WorkerKillSchedule] = None,
    ) -> None:
        self.config_spec = dict(config_spec)
        self.schedule = schedule
        self.workdir = Path(workdir)
        self.anchor_every = anchor_every
        self.telemetry = telemetry
        self.workers = workers
        self.worker_kills = worker_kills
        self._golden: Optional[Dict[str, Any]] = None

    def _config(self) -> StudyConfig:
        return StudyConfig(**self.config_spec)

    # -- golden ------------------------------------------------------------

    def run_golden(self) -> Dict[str, Any]:
        """The uninterrupted reference campaign and its digests."""
        if self._golden is not None:
            return self._golden
        golden_dir = self.workdir / "golden"
        dataset = Study(self._config()).run(
            checkpoint_dir=golden_dir / "store",
            anchor_every=self.anchor_every,
        )
        export = golden_dir / "dataset.json"
        save_dataset(dataset, export)
        export_all_csv(dataset, golden_dir / "csv")
        self._golden = {
            "export_digest": _file_digest(export),
            "csv_sums": (golden_dir / "csv" / SHA256SUMS_NAME).read_text(),
            "health": dataset.health.to_dict(),
        }
        return self._golden

    # -- killing -----------------------------------------------------------

    def _kill_in_process(self, point: AbortPoint, store_dir: Path) -> bool:
        """Run until ``point`` and raise; True iff the hook fired."""
        fired = []

        def hook(day: int, stage: str) -> None:
            if day == point.day and stage == point.stage:
                fired.append(True)
                raise ChaosAbort(f"chaos abort at {point.label}")

        study = Study(self._config())
        study.stage_hook = hook
        try:
            study.run(
                checkpoint_dir=store_dir,
                anchor_every=self.anchor_every,
                workers=self.workers,
            )
        except ChaosAbort:
            pass
        return bool(fired)

    def _kill_subprocess(self, point: AbortPoint, store_dir: Path) -> bool:
        """Run a real child campaign that SIGKILLs itself at ``point``."""
        spec_path = store_dir.parent / "spec.json"
        spec_path.parent.mkdir(parents=True, exist_ok=True)
        spec_path.write_text(json.dumps({
            "config": self.config_spec,
            "point": point.to_dict(),
            "store": str(store_dir),
            "anchor_every": self.anchor_every,
            "workers": self.workers,
        }))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.chaos._child", str(spec_path)],
            env=child_environ(),
            capture_output=True,
        )
        return proc.returncode == -signal.SIGKILL

    # -- one cycle ---------------------------------------------------------

    def run_cycle(self, index: int, point: AbortPoint) -> ChaosCycle:
        """Kill one fresh campaign at ``point``, resume, verify."""
        golden = self.run_golden()
        cycle_dir = self.workdir / f"cycle-{index:02d}-{point.label}"
        store_dir = cycle_dir / "store"
        cycle = ChaosCycle(point=point)

        if point.mode == "sigkill":
            fired = self._kill_subprocess(point, store_dir)
        else:
            fired = self._kill_in_process(point, store_dir)
        cycle.invariants["kill_fired"] = fired

        # Resume from whatever the dead campaign left behind.  A death
        # before the first checkpoint leaves a store with no day
        # records: the only recovery is a fresh rerun (which re-creates
        # the store — same config, so RunStore.create restarts it).
        survivor_days: List[int] = []
        if (store_dir / MANIFEST_NAME).exists():
            try:
                survivor_days = RunStore.open(store_dir).days()
            except CheckpointError:
                survivor_days = []
        if survivor_days:
            study = Study.resume(store_dir)
            cycle.resumed = True
        else:
            study = Study(self._config())
            cycle.resumed = False
        dataset = study.run(
            checkpoint_dir=None if cycle.resumed else store_dir,
            anchor_every=None if cycle.resumed else self.anchor_every,
            workers=self.workers,
        )

        export = cycle_dir / "dataset.json"
        save_dataset(dataset, export)
        export_all_csv(dataset, cycle_dir / "csv")

        cycle.invariants["export_byte_identical"] = (
            _file_digest(export) == golden["export_digest"]
        )
        cycle.invariants["csv_sums_match"] = (
            (cycle_dir / "csv" / SHA256SUMS_NAME).read_text()
            == golden["csv_sums"]
        )
        cycle.invariants["health_consistent"] = (
            dataset.health.to_dict() == golden["health"]
        )
        # A resumed campaign is life 2 of the logical run; a fresh
        # rerun after a pre-checkpoint death is life 1 again.
        cycle.invariants["process_lives_consistent"] = (
            study.telemetry.process_lives == (2 if cycle.resumed else 1)
        )
        cycle.invariants["store_fsck_clean"] = fsck_store(store_dir).ok
        cycle.invariants["no_orphan_temp_files"] = not any(
            cycle_dir.rglob("*.tmp")
        )

        if self.telemetry is not None:
            self.telemetry.count("chaos_cycles_total", mode=point.mode)
        return cycle

    # -- one worker-kill cycle ---------------------------------------------

    def run_worker_kill_cycle(
        self, index: int, point: WorkerKillPoint
    ) -> WorkerKillCycle:
        """SIGKILL one probe worker mid-day; the campaign must survive.

        The kill lands through the supervisor's chaos hook: right
        after day ``point.day``'s shards are shipped, worker
        ``point.worker`` is SIGKILLed with its reply outstanding.  The
        supervision invariants verified: the kill fired; the campaign
        completed in a single process life (no resume, no operator);
        its export, CSV checksums and health ledger are byte-identical
        to the sequential golden run; the store passes fsck; no temp
        files leak.
        """
        golden = self.run_golden()
        cycle_dir = self.workdir / f"wkill-{index:02d}-{point.label}"
        store_dir = cycle_dir / "store"
        cycle = WorkerKillCycle(point=point)
        fired: List[bool] = []

        def kill_hook(day: int) -> Optional[int]:
            if day == point.day and not fired:
                fired.append(True)
                return point.worker
            return None

        study = Study(self._config())
        study.worker_kill_hook = kill_hook
        dataset = study.run(
            checkpoint_dir=store_dir,
            anchor_every=self.anchor_every,
            workers=max(self.workers, 2),
        )
        cycle.invariants["kill_fired"] = bool(fired)

        export = cycle_dir / "dataset.json"
        save_dataset(dataset, export)
        export_all_csv(dataset, cycle_dir / "csv")

        cycle.invariants["export_byte_identical"] = (
            _file_digest(export) == golden["export_digest"]
        )
        cycle.invariants["csv_sums_match"] = (
            (cycle_dir / "csv" / SHA256SUMS_NAME).read_text()
            == golden["csv_sums"]
        )
        cycle.invariants["health_consistent"] = (
            dataset.health.to_dict() == golden["health"]
        )
        # Survival, not resurrection: the whole point of supervision
        # is that the campaign never died.
        cycle.invariants["single_process_life"] = (
            study.telemetry.process_lives == 1
        )
        cycle.invariants["store_fsck_clean"] = fsck_store(store_dir).ok
        cycle.invariants["no_orphan_temp_files"] = not any(
            cycle_dir.rglob("*.tmp")
        )

        if self.telemetry is not None:
            self.telemetry.count("chaos_cycles_total", mode="workerkill")
        return cycle

    # -- the whole schedule ------------------------------------------------

    def run(self) -> ChaosReport:
        """Run every scheduled cycle; returns the full report."""
        self.workdir.mkdir(parents=True, exist_ok=True)
        report = ChaosReport(schedule=self.schedule)
        report.golden_export = self.run_golden()["export_digest"]
        for index, point in enumerate(self.schedule):
            report.cycles.append(self.run_cycle(index, point))
        if self.worker_kills is not None:
            for index, point in enumerate(self.worker_kills):
                report.worker_cycles.append(
                    self.run_worker_kill_cycle(index, point)
                )
        return report
