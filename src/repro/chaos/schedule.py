"""Seeded schedules of campaign abort points.

A chaos schedule is the deterministic half of the chaos harness: a
seeded sample of :class:`AbortPoint`\\ s — ``(day, stage, mode)``
triples — drawn from every stage boundary a campaign of the given
shape passes through.  The same seed always yields the same schedule,
so a chaos run that exposes a crash-consistency bug is replayable
bit-for-bit, and the CI smoke job pins one seed forever.

Stage names follow the hook points :class:`~repro.core.study.Study`
fires (see ``Study._fire_hook``): the five pipeline stages of a day,
plus the ``checkpoint`` boundary (immediately before the day record is
written) and ``day_end`` (immediately after).  ``join`` exists only on
the campaign's join day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "ABORT_MODES",
    "STAGES",
    "AbortPoint",
    "ChaosSchedule",
    "WorkerKillPoint",
    "WorkerKillSchedule",
]

#: Every stage boundary a campaign day fires, in execution order.
STAGES = (
    "world",
    "discovery",
    "monitor",
    "control",
    "join",
    "checkpoint",
    "day_end",
)

#: How the harness kills the campaign at a point: ``abort`` raises
#: in-process (clean unwind through the stage's context managers),
#: ``sigkill`` takes down a real subprocess with no chance to clean up.
ABORT_MODES = ("abort", "sigkill")


@dataclass(frozen=True)
class AbortPoint:
    """One scheduled campaign death: kill at ``(day, stage)`` via ``mode``."""

    day: int
    stage: str
    mode: str

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ConfigError(f"abort day must be >= 0, got {self.day}")
        if self.stage not in STAGES:
            raise ConfigError(
                f"unknown stage {self.stage!r} (known: {STAGES})"
            )
        if self.mode not in ABORT_MODES:
            raise ConfigError(
                f"unknown abort mode {self.mode!r} (known: {ABORT_MODES})"
            )

    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``sigkill@d3.monitor``."""
        return f"{self.mode}@d{self.day}.{self.stage}"

    def to_dict(self) -> Dict[str, Any]:
        return {"day": self.day, "stage": self.stage, "mode": self.mode}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AbortPoint":
        return cls(
            day=int(data["day"]),
            stage=str(data["stage"]),
            mode=str(data["mode"]),
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, ordered collection of abort points."""

    points: Tuple[AbortPoint, ...]
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSchedule":
        return cls(
            points=tuple(
                AbortPoint.from_dict(p) for p in data.get("points", ())
            ),
            seed=data.get("seed"),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        n_days: int,
        join_day: Optional[int] = None,
        n_points: int = 5,
        modes: Sequence[str] = ABORT_MODES,
    ) -> "ChaosSchedule":
        """A seeded sample of ``n_points`` distinct abort points.

        Candidates are every ``(day, stage)`` boundary a campaign of
        ``n_days`` days fires (``join`` only on ``join_day``); modes
        are drawn uniformly from ``modes``.  Deterministic in ``seed``.
        """
        if n_points < 1:
            raise ConfigError(f"n_points must be >= 1, got {n_points}")
        modes = tuple(modes)
        for mode in modes:
            if mode not in ABORT_MODES:
                raise ConfigError(
                    f"unknown abort mode {mode!r} (known: {ABORT_MODES})"
                )
        candidates = [
            (day, stage)
            for day in range(n_days)
            for stage in STAGES
            if stage != "join" or day == join_day
        ]
        if n_points > len(candidates):
            raise ConfigError(
                f"cannot place {n_points} abort points in a {n_days}-day "
                f"campaign ({len(candidates)} stage boundaries)"
            )
        rng = random.Random(seed)
        chosen = sorted(
            rng.sample(candidates, n_points),
            key=lambda c: (c[0], STAGES.index(c[1])),
        )
        points = tuple(
            AbortPoint(day=day, stage=stage, mode=rng.choice(modes))
            for day, stage in chosen
        )
        return cls(points=points, seed=seed)

    @classmethod
    def every_boundary(
        cls,
        *,
        n_days: int,
        join_day: Optional[int] = None,
        mode: str = "abort",
    ) -> "ChaosSchedule":
        """The exhaustive schedule: one point per stage boundary."""
        points = tuple(
            AbortPoint(day=day, stage=stage, mode=mode)
            for day in range(n_days)
            for stage in STAGES
            if stage != "join" or day == join_day
        )
        return cls(points=points)


@dataclass(frozen=True)
class WorkerKillPoint:
    """One scheduled worker death: SIGKILL worker ``worker`` mid-probe.

    Unlike an :class:`AbortPoint` — which kills the *campaign* and
    tests the resume path — a worker-kill point kills one probe
    worker right after day ``day``'s shards are shipped (the worst
    moment: the parent is waiting on the reply) and tests the
    supervision path: the campaign must complete without intervention
    and still produce byte-identical artefacts.
    """

    day: int
    worker: int

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ConfigError(f"kill day must be >= 0, got {self.day}")
        if self.worker < 0:
            raise ConfigError(
                f"worker index must be >= 0, got {self.worker}"
            )

    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``wkill@d3.w1``."""
        return f"wkill@d{self.day}.w{self.worker}"

    def to_dict(self) -> Dict[str, Any]:
        return {"day": self.day, "worker": self.worker}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerKillPoint":
        return cls(day=int(data["day"]), worker=int(data["worker"]))


@dataclass(frozen=True)
class WorkerKillSchedule:
    """A seeded, ordered collection of worker-kill points."""

    points: Tuple[WorkerKillPoint, ...]
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerKillSchedule":
        return cls(
            points=tuple(
                WorkerKillPoint.from_dict(p) for p in data.get("points", ())
            ),
            seed=data.get("seed"),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        n_days: int,
        workers: int,
        n_points: int = 2,
    ) -> "WorkerKillSchedule":
        """A seeded sample of ``n_points`` kills on distinct days.

        Days are sampled without replacement (one kill per probe day
        keeps each cycle's healing path unambiguous); the victim
        worker is drawn uniformly per point.  Deterministic in
        ``seed``.
        """
        if n_points < 1:
            raise ConfigError(f"n_points must be >= 1, got {n_points}")
        if workers < 2:
            raise ConfigError(
                f"worker kills need a pool (workers >= 2), got {workers}"
            )
        if n_points > n_days:
            raise ConfigError(
                f"cannot place {n_points} worker kills on distinct days "
                f"of a {n_days}-day campaign"
            )
        rng = random.Random(seed)
        days = sorted(rng.sample(range(n_days), n_points))
        points = tuple(
            WorkerKillPoint(day=day, worker=rng.randrange(workers))
            for day in days
        )
        return cls(points=points, seed=seed)
