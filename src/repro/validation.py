"""Calibration self-check: measured dataset vs the paper's marginals.

``validate_dataset`` recomputes the key statistics of a collected
:class:`~repro.core.dataset.StudyDataset` and compares each against the
paper's published value with a tolerance appropriate to the study's
scale.  Used by CI, the CLI's ``--validate`` flag, and anyone changing
calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.content import entity_prevalence
from repro.analysis.language import language_shares
from repro.analysis.messages import message_types
from repro.analysis.revocation import revocation
from repro.analysis.sharing import tweets_per_url
from repro.analysis.staleness import staleness
from repro.core.dataset import StudyDataset
from repro.platforms.base import MessageType
from repro.reporting import paper_values as paper
from repro.reporting.tables import format_table

__all__ = ["CalibrationCheck", "validate_dataset", "render_validation_report"]

PLATFORMS = ("whatsapp", "telegram", "discord")


@dataclass(frozen=True)
class CalibrationCheck:
    """One paper-vs-measured comparison.

    Attributes:
        name: Statistic name (includes figure/table reference).
        platform: Messaging platform ('' for cross-platform checks).
        paper_value: The published value.
        measured: The value recomputed from the dataset.
        tolerance: Allowed absolute deviation.
    """

    name: str
    platform: str
    paper_value: float
    measured: float
    tolerance: float

    @property
    def ok(self) -> bool:
        """Whether the measured value is within tolerance."""
        return abs(self.measured - self.paper_value) <= self.tolerance + 1e-12


def validate_dataset(dataset: StudyDataset) -> List[CalibrationCheck]:
    """Run every calibration check against a collected dataset."""
    checks: List[CalibrationCheck] = []

    for platform in PLATFORMS:
        # Fig 2: single-share fraction.
        dist = tweets_per_url(dataset, platform)
        checks.append(
            CalibrationCheck(
                name="fig2.single_share_frac",
                platform=platform,
                paper_value=paper.FIG2_SINGLE_SHARE[platform],
                measured=dist.single_share_frac,
                tolerance=0.07,
            )
        )

        # Fig 3: entity prevalences.
        prevalence = entity_prevalence(dataset, platform)
        p_hash, p_mention, p_rt = paper.FIG3[platform]
        checks.append(
            CalibrationCheck(
                "fig3.mention_frac", platform, p_mention,
                prevalence.mention_frac, 0.08,
            )
        )
        checks.append(
            CalibrationCheck(
                "fig3.retweet_frac", platform, p_rt,
                prevalence.retweet_frac, 0.08,
            )
        )

        # Fig 4: English share.
        en_paper = dict(paper.FIG4_TOP_LANGS[platform])["en"]
        checks.append(
            CalibrationCheck(
                "fig4.english_share", platform, en_paper,
                language_shares(dataset, platform).share("en"), 0.12,
            )
        )

        # Fig 5: staleness masses.
        stale = staleness(dataset, platform)
        p_same, p_year = paper.FIG5[platform]
        checks.append(
            CalibrationCheck(
                "fig5.same_day_frac", platform, p_same,
                stale.same_day_frac, 0.12,
            )
        )
        checks.append(
            CalibrationCheck(
                "fig5.over_year_frac", platform, p_year,
                stale.over_year_frac, 0.10,
            )
        )

        # Fig 6: revocation masses.
        revoked = revocation(dataset, platform)
        p_rev, p_before = paper.FIG6[platform]
        checks.append(
            CalibrationCheck(
                "fig6.revoked_frac", platform, p_rev,
                revoked.revoked_frac, 0.07,
            )
        )
        checks.append(
            CalibrationCheck(
                "fig6.before_first_obs_frac", platform, p_before,
                revoked.before_first_obs_frac, 0.07,
            )
        )

        # Fig 8: text share.
        checks.append(
            CalibrationCheck(
                "fig8.text_frac", platform, paper.FIG8_TEXT_FRAC[platform],
                message_types(dataset, platform).fraction(MessageType.TEXT),
                0.05,
            )
        )

    return checks


def render_validation_report(checks: List[CalibrationCheck]) -> str:
    """Render the checks as a table with a pass/fail verdict column."""
    rows = [
        [
            check.name,
            check.platform,
            f"{check.paper_value:.3f}",
            f"{check.measured:.3f}",
            f"±{check.tolerance:.2f}",
            "ok" if check.ok else "FAIL",
        ]
        for check in checks
    ]
    n_ok = sum(1 for check in checks if check.ok)
    return format_table(
        ["check", "platform", "paper", "measured", "tolerance", "verdict"],
        rows,
        title=(
            f"Calibration self-check: {n_ok}/{len(checks)} within tolerance"
        ),
    )
