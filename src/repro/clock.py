"""Simulated time for the measurement campaign.

The paper's study window runs from 2020-04-08 through 2020-05-15: 38
days of hourly Search polls, continuous Streaming collection, and one
metadata snapshot per group per day.  The simulator represents time as a
float number of **days since the study start** (day 0 = 2020-04-08
00:00 UTC); group creation dates before the study are negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Iterator

__all__ = ["STUDY_START", "STUDY_DAYS", "SimClock", "sim_day_to_date"]

#: First day of the paper's data collection.
STUDY_START = date(2020, 4, 8)

#: Length of the collection window in days (2020-04-08 .. 2020-05-15).
STUDY_DAYS = 38

#: Hours between consecutive Search API polls (the paper polled hourly).
SEARCH_POLL_HOURS = 1

#: Lookback window of the Search API, in days.
SEARCH_WINDOW_DAYS = 7.0


def sim_day_to_date(t: float) -> date:
    """Convert a simulation time (days since study start) to a calendar date."""
    return STUDY_START + timedelta(days=int(t // 1))


@dataclass
class SimClock:
    """Tracks the current simulation time within the study window.

    Attributes:
        n_days: Total number of days in the campaign.
        t: Current time in days since the study start.
    """

    n_days: int = STUDY_DAYS
    t: float = field(default=0.0)

    @property
    def day(self) -> int:
        """The current whole day index (0-based)."""
        return int(self.t)

    @property
    def today(self) -> date:
        """The current calendar date."""
        return sim_day_to_date(self.t)

    def advance_hours(self, hours: float) -> None:
        """Move the clock forward by ``hours``."""
        self.t += hours / 24.0

    def advance_to_day(self, day: int) -> None:
        """Jump to the start of ``day`` (must not move backwards)."""
        if day < self.t:
            raise ValueError(f"clock cannot move backwards: {day} < {self.t}")
        self.t = float(day)

    def days(self) -> Iterator[int]:
        """Iterate over the remaining whole days of the campaign."""
        while self.day < self.n_days:
            yield self.day
            self.advance_to_day(self.day + 1)

    @property
    def finished(self) -> bool:
        """True once the campaign window has been fully consumed."""
        return self.t >= self.n_days
