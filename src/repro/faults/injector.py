"""Seeded, schedulable fault injection.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into concrete failures at the
proxied call sites.  Every decision is a stable hash of
``(fault seed, endpoint, per-endpoint call index)`` via
:func:`repro.rng.stable_uniform` — no wall clock, no shared RNG
stream — so a campaign replays byte-identically from its seed, and a
*retried* call is a fresh coin flip (transient faults genuinely clear
on retry).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TypeVar

from repro.errors import (
    APIRateLimitError,
    NetworkTimeoutError,
    TemporarilyUnavailableError,
)
from repro.faults.plan import FaultPlan
from repro.resilience.health import CollectionHealth
from repro.rng import stable_uniform

__all__ = ["FaultInjector"]

T = TypeVar("T")

_KIND_TO_ERROR = {
    "timeout": NetworkTimeoutError,
    "rate_limit": APIRateLimitError,
    "unreachable": TemporarilyUnavailableError,
}


class FaultInjector:
    """Injects the faults a :class:`FaultPlan` schedules.

    Attributes:
        plan: The declarative fault plan in force.
        seed: Fault seed; distinct from the world seed so the same
            world can be replayed under different fault schedules.
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int,
        health: Optional[CollectionHealth] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self._health = health
        self._calls: Dict[str, int] = {}

    def _next_index(self, counter: str) -> int:
        index = self._calls.get(counter, 0)
        self._calls[counter] = index + 1
        return index

    def _coin(self, counter: str, index: int) -> float:
        return stable_uniform(
            f"{self.seed}/{counter}/{index}", salt="fault-injector"
        )

    def before_call(self, endpoint: str, platform: str, t: float) -> None:
        """Fault check for one call on ``endpoint`` at simulated ``t``.

        Raises the scheduled transient error when the coin lands on a
        fault; returns silently otherwise.  Each invocation consumes
        one per-endpoint call index, so the schedule is a pure function
        of the seed and the call sequence.
        """
        spec = self.plan.spec(endpoint)
        index = self._next_index(endpoint)
        rate = spec.effective_rate(t)
        if rate <= 0.0 or self._coin(endpoint, index) >= rate:
            return
        pick = self._coin(f"{endpoint}/kind", index)
        kind = spec.kinds[int(pick * len(spec.kinds)) % len(spec.kinds)]
        if self._health is not None:
            self._health.bump(platform, int(t), "faults")
        raise _KIND_TO_ERROR[kind](
            f"injected {kind} on {endpoint} at t={t:.3f}"
        )

    def filter_results(
        self, endpoint: str, platform: str, t: float, results: Sequence[T]
    ) -> List[T]:
        """Maybe truncate a result page (Twitter endpoints).

        A truncated page silently keeps only the leading
        ``truncate_frac`` of results — the way a real paginated API
        drops the tail when a cursor dies mid-walk.
        """
        spec = self.plan.spec(endpoint)
        results = list(results)
        if spec.truncate_rate <= 0.0 or not results:
            return results
        counter = f"{endpoint}/truncate"
        index = self._next_index(counter)
        if self._coin(counter, index) >= spec.truncate_rate:
            return results
        keep = max(1, int(len(results) * spec.truncate_frac))
        if keep >= len(results):
            return results
        if self._health is not None:
            self._health.bump(platform, int(t), "truncated")
            self._health.bump(
                platform, int(t), "dropped_results", len(results) - keep
            )
        return results[:keep]
