"""Fault proxies: the common wrapper the pipeline talks through.

Each proxy wraps one real client (Twitter Search/Streaming, a platform
web client or API) and forwards everything untouched *except* the
observation/join endpoints named in the fault plan, which first pass
through the injector's fault check.  The pipeline never knows whether
it holds a bare client or a proxied one — with no plan configured the
proxies are simply absent and the call path is exactly the seed's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.faults.injector import FaultInjector
from repro.twitter.model import Tweet

__all__ = [
    "FaultProxy",
    "FaultySearchAPI",
    "FaultyStreamingAPI",
    "FaultyPreviewClient",
    "FaultyDiscordAPI",
    "FaultyJoinClient",
]


class FaultProxy:
    """Transparent proxy base: guard named endpoints, pass the rest."""

    def __init__(self, target: object, injector: FaultInjector) -> None:
        self._target = target
        self._injector = injector

    def __getattr__(self, name: str):
        # object.__getattribute__ (not self._target) so a half-built
        # proxy — e.g. mid-unpickle, before __setstate__ ran — raises
        # AttributeError instead of recursing into __getattr__.
        target = object.__getattribute__(self, "_target")
        return getattr(target, name)

    # Explicit pickle protocol: without it, pickle's __getstate__
    # probe falls through __getattr__ to the wrapped client and the
    # proxy would be restored with the *target's* state (losing
    # _target itself, and recursing on the next attribute access).
    # Checkpointing (repro.checkpoint) pickles whole campaigns, so
    # proxies must round-trip faithfully.
    def __getstate__(self) -> dict:
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _guard(self, endpoint: str, platform: str, t: float) -> None:
        self._injector.before_call(endpoint, platform, t)


class FaultySearchAPI(FaultProxy):
    """Search API under faults: failed or truncated polls."""

    def search(
        self,
        patterns: Sequence[str],
        now: float,
        since: Optional[float] = None,
    ) -> List[Tweet]:
        self._guard("twitter.search", "twitter", now)
        results = self._target.search(patterns, now, since=since)
        return self._injector.filter_results(
            "twitter.search", "twitter", now, results
        )


class FaultyStreamingAPI(FaultProxy):
    """Streaming API under faults: dropped windows, thinned samples."""

    def filtered(
        self, patterns: Sequence[str], t0: float, t1: float
    ) -> List[Tweet]:
        self._guard("twitter.stream", "twitter", t0)
        results = self._target.filtered(patterns, t0, t1)
        return self._injector.filter_results(
            "twitter.stream", "twitter", t0, results
        )

    def sample(self, t0: float, t1: float, **kwargs) -> List[Tweet]:
        self._guard("twitter.sample", "twitter", t0)
        results = self._target.sample(t0, t1, **kwargs)
        return self._injector.filter_results(
            "twitter.sample", "twitter", t0, results
        )


class FaultyPreviewClient(FaultProxy):
    """WhatsApp/Telegram web client under faults: unreachable pages."""

    def __init__(
        self, target: object, injector: FaultInjector, platform: str
    ) -> None:
        super().__init__(target, injector)
        self._platform = platform
        self._endpoint = f"{platform}.preview"

    def preview(self, url: str, t: float):
        self._guard(self._endpoint, self._platform, t)
        return self._target.preview(url, t)


class FaultyDiscordAPI(FaultProxy):
    """Discord REST API under faults: rate-limited invites and joins."""

    def get_invite(self, url: str, t: float):
        self._guard("discord.invite", "discord", t)
        return self._target.get_invite(url, t)

    def join(self, url: str, t: float):
        self._guard("discord.join", "discord", t)
        return self._target.join(url, t)


class FaultyJoinClient(FaultProxy):
    """Join-capable account (WhatsApp/Telegram) under join faults."""

    def __init__(
        self, target: object, injector: FaultInjector, platform: str
    ) -> None:
        super().__init__(target, injector)
        self._platform = platform
        self._endpoint = f"{platform}.join"

    def join(self, url: str, t: float):
        self._guard(self._endpoint, self._platform, t)
        return self._target.join(url, t)
