"""Deterministic fault injection for the measurement campaign.

Real longitudinal collection survives revoked landing pages, flaky
APIs, and rate limits; this package lets a seeded study *schedule*
those failures — a :class:`FaultPlan` describes per-endpoint rates and
burst windows, a :class:`FaultInjector` rolls the (stable-hash) dice,
and the proxy classes interpose between the pipeline and the simulated
platforms.  The other half of the story, absorbing the injected
faults, lives in :mod:`repro.resilience`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ENDPOINTS,
    FAULT_KINDS,
    PROFILES,
    Burst,
    FaultPlan,
    FaultSpec,
)
from repro.faults.proxies import (
    FaultProxy,
    FaultyDiscordAPI,
    FaultyJoinClient,
    FaultyPreviewClient,
    FaultySearchAPI,
    FaultyStreamingAPI,
)

__all__ = [
    "ENDPOINTS",
    "FAULT_KINDS",
    "PROFILES",
    "Burst",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FaultProxy",
    "FaultyDiscordAPI",
    "FaultyJoinClient",
    "FaultyPreviewClient",
    "FaultySearchAPI",
    "FaultyStreamingAPI",
]
