"""Declarative fault plans.

A :class:`FaultPlan` says, per endpoint, how often the simulated
platform misbehaves and in which ways: transient faults (timeouts,
rate limits, unreachable landing pages) at a base ``rate``, optional
:class:`Burst` windows during which the rate changes (modelling a
platform incident or an aggressive rate-limiting episode), and
truncated result pages for the list-returning Twitter endpoints.

Plans are pure data — the coin flips happen in
:class:`~repro.faults.injector.FaultInjector`, deterministically from
the study's fault seed — so the same plan + seed always injects the
same faults at the same call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigError

__all__ = [
    "Burst",
    "FaultSpec",
    "FaultPlan",
    "ENDPOINTS",
    "FAULT_KINDS",
    "PROFILES",
]

#: Every call site the injector can intercept.
ENDPOINTS = (
    "twitter.search",
    "twitter.stream",
    "twitter.sample",
    "whatsapp.preview",
    "telegram.preview",
    "discord.invite",
    "whatsapp.join",
    "telegram.join",
    "discord.join",
)

#: Transient fault kinds and the exception they map to (see injector).
FAULT_KINDS = ("timeout", "rate_limit", "unreachable")


@dataclass(frozen=True)
class Burst:
    """A window of simulated time with its own fault rate.

    Attributes:
        start: Window start (days since study start, inclusive).
        end: Window end (exclusive).
        rate: Fault rate inside the window (replaces the base rate).
    """

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(
                f"burst window is empty: [{self.start}, {self.end})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"burst rate must be in [0, 1], got {self.rate}")

    def covers(self, t: float) -> bool:
        """Whether simulated time ``t`` falls inside the window."""
        return self.start <= t < self.end

    def to_dict(self) -> Dict[str, float]:
        """JSON-serialisable form (checkpoint manifests, digests)."""
        return {"start": self.start, "end": self.end, "rate": self.rate}


@dataclass(frozen=True)
class FaultSpec:
    """Fault behaviour of one endpoint.

    Attributes:
        rate: Base probability that a call raises a transient fault.
        kinds: Fault kinds to draw from (uniformly) when a fault fires.
        bursts: Windows overriding the base rate (first match wins).
        truncate_rate: Probability that a list-returning call silently
            drops the tail of its result page (Twitter endpoints only).
        truncate_frac: Fraction of the page kept when truncation fires.
    """

    rate: float = 0.0
    kinds: Tuple[str, ...] = ("timeout",)
    bursts: Tuple[Burst, ...] = ()
    truncate_rate: float = 0.0
    truncate_frac: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if not 0.0 <= self.truncate_rate <= 1.0:
            raise ConfigError(
                f"truncate_rate must be in [0, 1], got {self.truncate_rate}"
            )
        if not 0.0 < self.truncate_frac <= 1.0:
            raise ConfigError(
                f"truncate_frac must be in (0, 1], got {self.truncate_frac}"
            )
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r} (known: {FAULT_KINDS})"
                )

    def effective_rate(self, t: float) -> float:
        """The fault rate in force at simulated time ``t``."""
        for burst in self.bursts:
            if burst.covers(t):
                return burst.rate
        return self.rate

    @property
    def idle(self) -> bool:
        """True if this spec can never inject anything."""
        return (
            self.rate == 0.0
            and self.truncate_rate == 0.0
            and all(b.rate == 0.0 for b in self.bursts)
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (checkpoint manifests, digests)."""
        return {
            "rate": self.rate,
            "kinds": list(self.kinds),
            "bursts": [burst.to_dict() for burst in self.bursts],
            "truncate_rate": self.truncate_rate,
            "truncate_frac": self.truncate_frac,
        }


_NO_FAULTS = FaultSpec()


@dataclass(frozen=True)
class FaultPlan:
    """Per-endpoint fault specs for a whole campaign.

    Endpoints absent from ``specs`` never fault.  Plans are built
    either directly or from a named profile via :meth:`profile`.
    """

    specs: Mapping[str, FaultSpec] = field(default_factory=dict)
    name: str = "custom"

    def __post_init__(self) -> None:
        for endpoint in self.specs:
            if endpoint not in ENDPOINTS:
                raise ConfigError(
                    f"unknown endpoint {endpoint!r} (known: {ENDPOINTS})"
                )

    def spec(self, endpoint: str) -> FaultSpec:
        """The spec for ``endpoint`` (a no-fault spec if unconfigured)."""
        return self.specs.get(endpoint, _NO_FAULTS)

    @property
    def idle(self) -> bool:
        """True if no endpoint can ever fault under this plan."""
        return all(spec.idle for spec in self.specs.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (checkpoint manifests, digests).

        Endpoints are emitted in sorted order so the encoding — and
        any digest over it — is independent of construction order.
        """
        return {
            "name": self.name,
            "specs": {
                endpoint: self.specs[endpoint].to_dict()
                for endpoint in sorted(self.specs)
            },
        }

    @classmethod
    def profile(cls, name: str) -> "FaultPlan":
        """Return one of the built-in profiles (see :data:`PROFILES`)."""
        try:
            builder = PROFILES[name]
        except KeyError:
            raise ConfigError(
                f"unknown fault profile {name!r} (known: {sorted(PROFILES)})"
            ) from None
        return builder()


def _profile_none() -> FaultPlan:
    """All machinery engaged, nothing ever injected (overhead baseline)."""
    return FaultPlan(specs={}, name="none")


def _profile_paper_like() -> FaultPlan:
    """Flakiness at the level a real 38-day campaign absorbs quietly.

    Occasional timeouts on every observation channel, mild Discord
    rate limiting, a small chance of truncated Search pages, and one
    three-day Telegram incident (days 20-23) of elevated failures —
    the kind of episode the paper's collection shrugged off.
    """
    incident = Burst(start=20.0, end=23.0, rate=0.30)
    return FaultPlan(
        name="paper-like",
        specs={
            "twitter.search": FaultSpec(
                rate=0.02, kinds=("timeout", "rate_limit"),
                truncate_rate=0.05, truncate_frac=0.7,
            ),
            "twitter.stream": FaultSpec(rate=0.01, kinds=("timeout",)),
            "twitter.sample": FaultSpec(rate=0.01, kinds=("timeout",)),
            "whatsapp.preview": FaultSpec(
                rate=0.02, kinds=("timeout", "unreachable")
            ),
            "telegram.preview": FaultSpec(
                rate=0.02, kinds=("timeout", "unreachable"),
                bursts=(incident,),
            ),
            "discord.invite": FaultSpec(
                rate=0.03, kinds=("rate_limit", "timeout")
            ),
            "whatsapp.join": FaultSpec(rate=0.02, kinds=("timeout",)),
            "telegram.join": FaultSpec(
                rate=0.02, kinds=("rate_limit",), bursts=(incident,)
            ),
            "discord.join": FaultSpec(rate=0.02, kinds=("rate_limit",)),
        },
    )


def _profile_hostile() -> FaultPlan:
    """Every platform actively hostile: high rates plus total-outage
    bursts (rate 1.0) early in the window, guaranteed to trip every
    circuit breaker at least once even in short test campaigns."""
    def outage(start: float) -> Tuple[Burst, ...]:
        return (Burst(start=start, end=start + 1.0, rate=1.0),)

    return FaultPlan(
        name="hostile",
        specs={
            "twitter.search": FaultSpec(
                rate=0.30, kinds=("timeout", "rate_limit"),
                bursts=outage(3.0), truncate_rate=0.30, truncate_frac=0.5,
            ),
            "twitter.stream": FaultSpec(
                rate=0.25, kinds=("timeout",), bursts=outage(3.0)
            ),
            "twitter.sample": FaultSpec(rate=0.25, kinds=("timeout",)),
            "whatsapp.preview": FaultSpec(
                rate=0.35, kinds=("timeout", "unreachable"), bursts=outage(1.0)
            ),
            "telegram.preview": FaultSpec(
                rate=0.35, kinds=("timeout", "unreachable"), bursts=outage(2.0)
            ),
            "discord.invite": FaultSpec(
                rate=0.35, kinds=("rate_limit", "timeout"), bursts=outage(0.0)
            ),
            "whatsapp.join": FaultSpec(rate=0.30, kinds=("timeout",)),
            "telegram.join": FaultSpec(rate=0.30, kinds=("rate_limit",)),
            "discord.join": FaultSpec(rate=0.30, kinds=("rate_limit",)),
        },
    )


#: Built-in profile name -> plan builder.
PROFILES: Dict[str, object] = {
    "none": _profile_none,
    "paper-like": _profile_paper_like,
    "hostile": _profile_hostile,
}
