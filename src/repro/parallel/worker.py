"""Worker-process entry point: replica advance + sharded probe work.

Each worker runs :func:`worker_main` over one end of a pipe and holds
a world *replica*: the platform services bootstrapped from the parent
(see :func:`repro.parallel.engine.world_bootstrap`) and advanced one
day at a time with
:meth:`~repro.simulation.world.World.generate_day_groups` — the spawn
phase only, which draws exactly what the parent's full
``generate_day`` draws for group state, so the replica's services
register the same groups with the same plans.

What a probe computes depends on the engine mode set at bootstrap:

* ``"snapshot"`` (fault-free campaigns) — the worker runs its shard
  through a *real* :class:`~repro.core.monitor.MetadataMonitor`
  replica, built fresh each day over the replica clients, a
  :class:`~repro.privacy.hashing.PhoneHasher` with the study's salt,
  and a fresh resilience executor.  Without a fault plan every piece
  of per-probe accounting is a pure function of the probe (the
  executor's success path, snapshot construction, phone hashing) or a
  commutative counter (the health ledger, metric counters), so
  finished :class:`~repro.core.dataset.Snapshot` objects and a
  per-day ledger delta can be computed shard-locally and folded by
  the parent in canonical order.

* ``"replay"`` (a fault plan is active) — the worker computes only
  the pure half: the platform preview at the day's observation
  instant.  Previews are pure functions of (url, t) — every lazy
  materialisation they trigger comes from a per-key derived RNG
  stream — so the outcome is independent of shard membership, worker
  count and probe order.  Revocations and unknown URLs are captured
  as outcomes, not raised; everything the sequential path does
  *besides* the preview (fault draws, retries, breakers, ledger,
  hashing) is order-dependent under a fault plan and is replayed by
  the parent at the merge barrier.  Speculative previews for probes
  the parent's replay later defers (open breaker) or fails (injected
  fault) are computed and simply unused — wasted work under faults,
  never a divergence.

Because both computations are pure functions of (bootstrap state,
day, shard), the supervision layer re-executes a lost worker's shard
in the parent by calling the same :func:`compute_snapshots` /
:func:`compute_replay` over clients built on the parent's own world —
byte-identity of the healed pass is by shared code, not by a parallel
reimplementation.

Protocol (one tuple per message, pipe is FIFO):

* ``("bootstrap", blob, telemetry_enabled, mode, monitor_params,
  index)`` — install the replica.  ``monitor_params`` carries the
  phone-hasher salt and resilience seed for snapshot mode; ``index``
  is the worker's slot in the pool (diagnostics and the test-only
  hang hook below).
* ``("advance", day)`` — run ``generate_day_groups(day)``.
* ``("probe", day, [(canonical, url, platform), ...])`` — compute the
  shard; replies ``("result", day, payload, wall_seconds,
  cpu_seconds)`` where ``payload`` is the pickled ``(outcomes,
  health_or_None, registry_or_None)`` triple — outcomes are
  ``{canonical: Snapshot}`` in snapshot mode and ``{url: (kind,
  preview_or_None)}`` in replay mode.  Shipping the payload
  pre-pickled lets the parent time its own deserialise/merge cost
  separately from the time it spends blocked waiting, and the timings
  cover the serialisation work a worker's core really pays.  CPU
  seconds are reported next to wall seconds because on a core-starved
  host concurrent workers' wall clocks count each other's timeslices;
  CPU time is each shard's cost on an unconstrained core.
* ``("stop",)`` — exit.

Any exception is reported as ``("error", traceback_text)`` and the
worker exits; the engine surfaces it as a
:class:`~repro.errors.ParallelError`.

Hang injection (tests and the CI supervision smoke only): setting
``REPRO_PARALLEL_HANG`` to ``"<day>:<worker>[:<seconds>]"`` in the
parent's environment makes exactly that worker sleep for that many
seconds (default 3600) before computing that day's shard — the
deterministic stand-in for a worker wedged on a stuck socket, which
the supervisor must detect via its probe deadline.  Unset (the
default), the hook costs one dict lookup per probe message.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import Dict, List, Optional

from repro.core.discovery import URLRecord
from repro.core.monitor import MetadataMonitor
from repro.errors import ParallelError, RevokedURLError, UnknownURLError
from repro.parallel.sharding import Probe
from repro.platforms.discord import DiscordAPI
from repro.platforms.telegram import TelegramWebClient
from repro.platforms.whatsapp import WhatsAppWebClient
from repro.privacy.hashing import PhoneHasher
from repro.resilience import ResilienceExecutor
from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "HANG_ENV",
    "build_probe_clients",
    "compute_replay",
    "compute_snapshots",
    "worker_main",
]

#: Environment variable carrying the test-only hang-injection point.
HANG_ENV = "REPRO_PARALLEL_HANG"


def _maybe_hang(index: int, day: int) -> None:
    """Sleep if the hang-injection point matches this (day, worker)."""
    spec = os.environ.get(HANG_ENV)
    if not spec:
        return
    try:
        parts = spec.split(":")
        hang_day, hang_index = int(parts[0]), int(parts[1])
        hang_s = float(parts[2]) if len(parts) > 2 else 3600.0
    except (ValueError, IndexError):
        return
    if day == hang_day and index == hang_index:
        time.sleep(hang_s)


def build_probe_clients(world) -> Dict[str, object]:
    """The per-platform observation clients over ``world``'s services.

    Shared by the worker replicas and the supervisor's in-parent
    re-execution path: both must observe through identical client
    stacks for shard outcomes to be interchangeable.
    """
    return {
        "whatsapp": WhatsAppWebClient(world.platform("whatsapp")),
        "telegram": TelegramWebClient(world.platform("telegram")),
        # Same account label the study's monitor client uses; the
        # invite endpoint never reads it, but keep the replica exact.
        "discord": DiscordAPI(world.platform("discord"), "dc-monitor"),
    }


def _probe_one(clients: Dict[str, object], url: str, platform: str, t: float):
    client = clients[platform]
    try:
        if platform == "discord":
            return ("ok", client.get_invite(url, t))
        return ("ok", client.preview(url, t))
    except RevokedURLError:
        return ("revoked", None)
    except UnknownURLError:
        return ("unknown", None)


def _bootstrap(blob: bytes, telemetry_enabled: bool):
    world = pickle.loads(blob)
    telemetry = Telemetry(enabled=bool(telemetry_enabled))
    for service in world.platforms.values():
        service.telemetry = telemetry
    return world, telemetry, build_probe_clients(world)


def compute_replay(
    clients: Dict[str, object], day: int, shard: List[Probe]
):
    """Replay mode: pure preview outcomes, keyed by url."""
    t = MetadataMonitor.observation_time(day)
    outcomes = {
        url: _probe_one(clients, url, platform, t)
        for _canonical, url, platform in shard
    }
    return outcomes, None


def compute_snapshots(
    clients: Dict[str, object],
    telemetry: Telemetry,
    monitor_params: Dict[str, object],
    day: int,
    shard: List[Probe],
):
    """Snapshot mode: finished snapshots (keyed by canonical) + ledger.

    The monitor replica is built fresh per day: with no fault plan its
    only cross-day state (dead set, breaker streaks, retry-jitter call
    counters) is either never consulted — the parent's ``due`` filter
    already excludes dead URLs from the shard — or never drawn from,
    so a per-day instance observes exactly what the campaign monitor
    would, and its ledger is the day's delta by construction.
    """
    monitor = MetadataMonitor(
        whatsapp=clients["whatsapp"],
        telegram=clients["telegram"],
        discord=clients["discord"],
        hasher=PhoneHasher(salt=monitor_params["salt"]),
        resilience=ResilienceExecutor(
            seed=monitor_params["seed"], telemetry=telemetry
        ),
        telemetry=telemetry,
    )
    records = [
        URLRecord(
            canonical=canonical,
            platform=platform,
            code="",
            url=url,
            first_seen_t=-1.0,
        )
        for canonical, url, platform in shard
    ]
    monitor.observe_day(day, records)
    outcomes = {
        canonical: snapshots[0]
        for canonical, snapshots in monitor.snapshots.items()
    }
    return outcomes, monitor.health


def _probe_shard(
    clients: Dict[str, object],
    telemetry: Telemetry,
    mode: str,
    monitor_params: Optional[Dict[str, object]],
    day: int,
    shard: List[Probe],
):
    if telemetry.enabled:
        # Fresh per-day registry: the parent merges exactly one day's
        # worth per reply, never double-counting across days.
        telemetry.metrics = MetricsRegistry()
    start_wall = time.perf_counter()
    start_cpu = time.process_time()
    if mode == "snapshot":
        outcomes, health = compute_snapshots(
            clients, telemetry, monitor_params or {}, day, shard
        )
    else:
        outcomes, health = compute_replay(clients, day, shard)
    registry = telemetry.metrics if telemetry.enabled else None
    payload = pickle.dumps(
        (outcomes, health, registry), protocol=pickle.HIGHEST_PROTOCOL
    )
    wall_s = time.perf_counter() - start_wall
    cpu_s = time.process_time() - start_cpu
    return payload, wall_s, cpu_s


def worker_main(conn) -> None:
    """Message loop of one probe worker (runs in the child process)."""
    world = None
    telemetry = Telemetry()
    clients: Dict[str, object] = {}
    mode = "replay"
    monitor_params: Optional[Dict[str, object]] = None
    worker_index = -1
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            kind = message[0]
            if kind == "stop":
                return
            try:
                if kind == "bootstrap":
                    world, telemetry, clients = _bootstrap(
                        message[1], message[2]
                    )
                    mode = message[3]
                    monitor_params = message[4]
                    worker_index = message[5]
                elif kind == "advance":
                    world.generate_day_groups(message[1])
                elif kind == "probe":
                    day, shard = message[1], message[2]
                    _maybe_hang(worker_index, day)
                    payload, wall_s, cpu_s = _probe_shard(
                        clients, telemetry, mode, monitor_params, day, shard
                    )
                    conn.send(("result", day, payload, wall_s, cpu_s))
                else:
                    raise ParallelError(
                        f"unknown engine message kind {kind!r}"
                    )
            except Exception:
                # Report and exit: after an error the replica's state
                # can no longer be trusted to match the parent's day.
                conn.send(("error", traceback.format_exc()))
                return
    finally:
        conn.close()
