"""Shard assignment for the parallel probe pass.

A probe's shard is a stable hash of its canonical URL modulo the
worker count — a pure function of (canonical, n_workers).  Worker id,
record iteration order and arrival order never enter the assignment,
so the same catalogue always lands on the same shards, and any
per-URL derived randomness is unchanged by *where* the probe runs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import ParallelError
from repro.rng import stable_hash

__all__ = ["assign_shards", "lost_probes", "shard_of"]

#: A probe as the engine ships it: (canonical, url, platform).
Probe = Tuple[str, str, str]


def shard_of(canonical: str, n_workers: int) -> int:
    """The shard index for ``canonical`` under ``n_workers`` workers."""
    if n_workers < 1:
        raise ParallelError(f"n_workers must be >= 1, got {n_workers}")
    return stable_hash(f"monitor/shard/{canonical}") % n_workers


def assign_shards(
    probes: Iterable[Probe], n_workers: int
) -> List[List[Probe]]:
    """Split ``probes`` into ``n_workers`` shard lists of probe triples.

    Within a shard, probes keep the caller's (canonical) order; the
    merge step does not depend on it, but deterministic shard lists
    keep worker-side work — and therefore worker telemetry — stable
    across runs.
    """
    shards: List[List[Probe]] = [[] for _ in range(n_workers)]
    for probe in probes:
        shards[shard_of(probe[0], n_workers)].append(probe)
    return shards


def lost_probes(
    shards: List[List[Probe]], lost: Iterable[int]
) -> List[Probe]:
    """The deterministic re-execution list for the ``lost`` shard indexes.

    When the supervisor replays the work of lost workers in the
    parent, it replays exactly these probes in exactly this order:
    shard-index order, caller (canonical) order within each shard.
    Probe outcomes are pure per-key functions, so the order cannot
    change any artefact — fixing it anyway keeps re-executed telemetry
    and logs reproducible run to run.
    """
    return [probe for index in sorted(set(lost)) for probe in shards[index]]
