"""Replay clients: the merge barrier's stand-in observation clients.

After the workers return their shard outcomes, the parent re-runs the
monitor's own ``observe_day`` loop with these clients installed via
``MetadataMonitor.replace_clients``.  Each client answers a probe by
looking up the worker-computed outcome for the URL — returning the
preview, or re-raising the revocation/unknown error the real client
raised in the worker — so the *entire* accounting path (fault
injector draws, retries, breaker transitions, health-ledger bumps,
snapshot construction, phone hashing) runs unchanged, in the exact
order the sequential path runs it.

When a fault plan is active the replay clients are wrapped in the
same fault proxies the sequential path uses, sharing the campaign's
live injector: the injector's per-endpoint call counters advance
probe by probe exactly as they would sequentially, and a retried
attempt simply resolves the same outcome again (previews are pure
functions of (url, t), so re-calling is what the real client would
have returned too).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ParallelError, RevokedURLError, UnknownURLError
from repro.faults import FaultInjector, FaultyDiscordAPI, FaultyPreviewClient

__all__ = [
    "ReplayDiscordAPI",
    "ReplayPreviewClient",
    "build_replay_clients",
]

#: A worker outcome: ("ok", preview) | ("revoked", None) | ("unknown", None).
Outcome = Tuple[str, object]


class _ReplayClient:
    """Shared outcome-lookup core of the replay clients."""

    def __init__(self, outcomes: Dict[str, Outcome], platform: str) -> None:
        self._outcomes = outcomes
        self._platform = platform

    def _resolve(self, url: str):
        try:
            kind, payload = self._outcomes[url]
        except KeyError:
            raise ParallelError(
                f"no worker outcome for {self._platform} URL {url!r}: "
                "the shard lists and the monitor's due-set disagree"
            ) from None
        if kind == "ok":
            return payload
        if kind == "revoked":
            raise RevokedURLError(url)
        if kind == "unknown":
            raise UnknownURLError(url)
        raise ParallelError(
            f"unrecognised worker outcome kind {kind!r} for URL {url!r}"
        )


class ReplayPreviewClient(_ReplayClient):
    """Stand-in for a WhatsApp/Telegram web client during the merge."""

    def preview(self, url: str, t: float):
        return self._resolve(url)


class ReplayDiscordAPI(_ReplayClient):
    """Stand-in for the Discord REST API during the merge."""

    def get_invite(self, url: str, t: float):
        return self._resolve(url)


def build_replay_clients(
    outcomes: Dict[str, Outcome],
    injector: Optional[FaultInjector] = None,
) -> Tuple[object, object, object]:
    """The (whatsapp, telegram, discord) clients for the merge replay.

    With ``injector`` given, each client is wrapped in the same fault
    proxy class the sequential pipeline uses, sharing the live
    injector, so the fault schedule is consumed identically.
    """
    whatsapp: object = ReplayPreviewClient(outcomes, "whatsapp")
    telegram: object = ReplayPreviewClient(outcomes, "telegram")
    discord: object = ReplayDiscordAPI(outcomes, "discord")
    if injector is not None:
        whatsapp = FaultyPreviewClient(whatsapp, injector, "whatsapp")
        telegram = FaultyPreviewClient(telegram, injector, "telegram")
        discord = FaultyDiscordAPI(discord, injector)
    return whatsapp, telegram, discord
