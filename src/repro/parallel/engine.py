"""The parent-side worker-pool engine for the daily probe pass.

:class:`ParallelEngine` owns N long-lived worker processes (``spawn``
context — the entry point must be importable, and a spawned child
shares no inherited state with the parent), keeps their world
replicas advanced to the campaign day, and runs the sharded probe
pass: ship each worker its shard, collect the outcome maps, fold the
per-worker telemetry registries into the campaign registry at the
day barrier.

Lifecycle, as the study drives it: the engine is constructed per
``run()`` call, started lazily at the first live monitor stage (the
bootstrap payload is a snapshot of the world *as of that day*, so
fresh runs, resumes and forks all bootstrap identically), nudged at
every world stage via :meth:`begin_day` so replicas advance while
the parent generates its own day, and closed in a ``finally`` when
the run ends.  Workers are daemons: a SIGKILLed campaign (chaos
harness) takes its pool down with it, and a resumed campaign simply
starts a fresh pool.

The engine itself is *fail-fast*: any pipe failure, worker death or
protocol violation surfaces as a :class:`~repro.errors.ParallelError`
after the pool has been torn down, so no stale worker outlives a
failed probe pass.  Crash *recovery* — deadline-bounded waits,
shard re-execution, bounded respawns, graceful degradation — is the
supervision layer's job (:mod:`repro.parallel.supervisor`), built on
the per-worker primitives this class exposes (:meth:`advance_worker`,
:meth:`poll_reply`, :meth:`worker_alive`, :meth:`stop_worker`,
:meth:`respawn_worker`, :meth:`sigkill_worker`).

The engine is deliberately *not* part of campaign state: anchors
never serialise it, resume replay always runs sequentially, and the
same store can be written under any worker count.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, ParallelError
from repro.parallel.sharding import Probe, assign_shards
from repro.parallel.worker import worker_main
from repro.simulation.world import World
from repro.telemetry import Telemetry
from repro.twitter.service import TwitterService

__all__ = ["ParallelEngine", "world_bootstrap"]

#: How long :meth:`ParallelEngine.close` waits at each escalation rung
#: (cooperative stop -> SIGTERM -> SIGKILL) before moving to the next.
DEFAULT_JOIN_TIMEOUT_S = 5.0


def world_bootstrap(world: World) -> bytes:
    """Pickle the replica bootstrap payload for ``world``.

    The replica needs the platform services (registered groups, their
    lazily materialised caches, the per-platform creator-assigner
    streams) and the spawn-phase bookkeeping, but none of the Twitter
    side: the clone swaps in an empty Twitter service and drops tweet
    buffers, pending share events and ground truths.  Platform-service
    telemetry handles are detached for the duration of the dump (the
    services are shared with the live study) so the payload never
    drags the campaign's span log across process boundaries.
    """
    clone = object.__new__(World)
    clone.__dict__ = dict(world.__dict__)
    clone.twitter = TwitterService()
    clone._first_tweets = {}
    clone._pending = {}
    clone.truths = {}
    clone._last_control_tweet_id = None
    services = list(world.platforms.values())
    saved = [service.telemetry for service in services]
    try:
        for service in services:
            service.telemetry = None
        return pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for service, handle in zip(services, saved):
            service.telemetry = handle


class ParallelEngine:
    """N probe workers plus the merge bookkeeping to drive them.

    ``mode`` selects what the workers compute (see
    :mod:`repro.parallel.worker`): ``"snapshot"`` ships finished
    snapshots plus a health-ledger delta per shard (fault-free
    campaigns, where all accounting is order-independent), while
    ``"replay"`` ships raw preview outcomes for the parent to replay
    sequentially (campaigns with a fault plan, whose injector draws
    are order-dependent).  Snapshot mode needs ``monitor_params`` —
    the phone-hasher salt and resilience seed the worker-side monitor
    replicas must share with the campaign's.
    """

    def __init__(
        self,
        workers: int,
        telemetry: Optional[Telemetry] = None,
        *,
        mode: str = "replay",
        monitor_params: Optional[Dict[str, object]] = None,
        join_timeout: float = DEFAULT_JOIN_TIMEOUT_S,
    ) -> None:
        if (
            not isinstance(workers, int)
            or isinstance(workers, bool)
            or workers < 1
        ):
            raise ConfigError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if mode not in ("snapshot", "replay"):
            raise ConfigError(
                f"engine mode must be 'snapshot' or 'replay', got {mode!r}"
            )
        if mode == "snapshot" and not monitor_params:
            raise ConfigError(
                "snapshot mode requires monitor_params (salt, seed)"
            )
        self.workers = workers
        self.mode = mode
        self._monitor_params = monitor_params
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Per-rung wait of the close() escalation ladder (shrunk by
        #: tests that exercise the SIGKILL rung without real 5s waits).
        self.join_timeout = join_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: List[object] = []
        #: Day the replicas are advanced through (None before start).
        self._advanced: Optional[int] = None

    @property
    def started(self) -> bool:
        """Whether the worker pool is up."""
        return bool(self._procs)

    def _spawn_worker(self, index: int, blob: bytes):
        """Spawn one worker and hand it the bootstrap payload."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"repro-probe-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        parent_conn.send(
            (
                "bootstrap",
                blob,
                self.telemetry.enabled,
                self.mode,
                self._monitor_params,
                index,
            )
        )
        return proc, parent_conn

    def start(self, world: World, day: int) -> None:
        """Spawn the pool, bootstrapping replicas from ``world``.

        ``world`` must be generated through ``day``; the replicas
        start advanced to the same point.
        """
        if self.started:
            raise ParallelError("parallel engine is already started")
        blob = world_bootstrap(world)
        try:
            for index in range(self.workers):
                proc, conn = self._spawn_worker(index, blob)
                self._procs.append(proc)
                self._conns.append(conn)
        except Exception:
            self.close()
            raise
        self._advanced = day
        self.telemetry.gauge("parallel_workers", self.workers)
        self.telemetry.count("parallel_pool_starts_total")

    # -- per-worker primitives (the supervisor builds on these) ------------

    def send_to(self, index: int, message: tuple) -> None:
        """Send ``message`` to worker ``index``.

        A pipe-level failure — the worker died and its end of the pipe
        is gone — is wrapped in :class:`ParallelError`, so callers see
        one exception type for every way a worker can be lost
        (``BrokenPipeError`` and the other ``OSError`` flavours never
        escape raw).
        """
        try:
            self._conns[index].send(message)
        except (OSError, ValueError) as exc:
            raise ParallelError(
                f"probe worker {index} is unreachable: pipe send failed "
                f"({exc})"
            ) from exc

    def advance_worker(self, index: int, day: int) -> None:
        """Advance worker ``index``'s replica through ``day``."""
        self.send_to(index, ("advance", day))

    def poll_reply(self, index: int, timeout: float = 0.0) -> bool:
        """Whether worker ``index`` has a reply ready within ``timeout``."""
        try:
            return self._conns[index].poll(timeout)
        except (OSError, EOFError, ValueError):
            # A dead peer's pending EOF still counts as "something to
            # read": recv_reply will surface it as a ParallelError.
            return True

    def recv_reply(self, index: int):
        """Receive one reply from worker ``index`` (blocking)."""
        try:
            return self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise ParallelError(
                f"probe worker {index} died without replying"
            ) from exc

    def worker_alive(self, index: int) -> bool:
        """Whether worker ``index``'s process is still running."""
        proc = self._procs[index]
        return proc is not None and proc.is_alive()

    def worker_sentinel(self, index: int):
        """The process sentinel of worker ``index`` (ready on death)."""
        return self._procs[index].sentinel

    def sigkill_worker(self, index: int) -> None:
        """SIGKILL worker ``index``'s process, nothing else.

        The pipe is left untouched: this is the chaos harness's honest
        crash — the parent must *discover* the death through polling
        and liveness checks, exactly as it would a real SEGV.
        """
        self._procs[index].kill()

    def stop_worker(self, index: int) -> None:
        """Forcefully stop worker ``index`` and close its pipe.

        Used on a worker already presumed lost (crashed or hung), so
        no cooperative stop message is attempted — the pipe may be
        wedged.  Escalates SIGTERM -> SIGKILL like :meth:`close`.
        """
        conn = self._conns[index]
        try:
            conn.close()
        except OSError:
            pass
        proc = self._procs[index]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=self.join_timeout)
        if proc.is_alive():
            proc.kill()
            proc.join()

    def respawn_worker(self, index: int, world: World) -> None:
        """Replace worker ``index`` with a fresh one bootstrapped now.

        ``world`` must be the parent's world, generated through the
        engine's current :attr:`_advanced` day: the fresh replica
        snapshots it directly, so it lands exactly where the lost
        replica's day-by-day advances would have left it.
        """
        if not self.started:
            raise ParallelError("cannot respawn a worker before start")
        self.stop_worker(index)
        proc, conn = self._spawn_worker(index, world_bootstrap(world))
        self._procs[index] = proc
        self._conns[index] = conn

    # -- the sharded probe pass --------------------------------------------

    def begin_day(self, day: int) -> None:
        """Advance every replica through ``day`` (no-op before start).

        The study calls this at the world stage, so replicas advance
        while the parent generates its own (much heavier) day.  A
        worker that died between days surfaces as a
        :class:`ParallelError` (never a raw ``BrokenPipeError``).
        """
        if not self.started or self._advanced is None:
            return
        while self._advanced < day:
            self._advanced += 1
            for index in range(len(self._conns)):
                self.advance_worker(index, self._advanced)

    def probe_day(
        self, day: int, probes: Iterable[Probe]
    ) -> Tuple[Dict[str, object], List[object]]:
        """Run day ``day``'s sharded probe pass.

        Returns ``(outcomes, healths)``: the merged outcome map
        (``canonical -> Snapshot`` in snapshot mode, ``url ->
        (kind, preview)`` in replay mode) and the per-shard
        health-ledger deltas (empty in replay mode — the parent's own
        replay keeps the ledger there).

        Shards are assigned by canonical URL
        (:func:`~repro.parallel.sharding.assign_shards`); replies are
        collected from every worker — the pipe protocol is FIFO, so a
        fixed worker iteration order makes the merge deterministic —
        and per-worker metric registries are folded into the campaign
        registry here, at the day barrier.

        Any failure mid-pass — a worker error reply, an unexpected
        reply, a dead pipe — closes the whole pool *before* the
        :class:`ParallelError` propagates: sibling workers must never
        keep running with replica state the parent no longer trusts.
        """
        if not self.started:
            raise ParallelError("parallel engine is not started")
        if self._advanced is not None and day < self._advanced:
            raise ParallelError(
                f"cannot probe day {day}: replicas already advanced "
                f"through day {self._advanced}"
            )
        try:
            self.begin_day(day)
            probes = list(probes)
            shards = assign_shards(probes, self.workers)
            for index, shard in enumerate(shards):
                self.send_to(index, ("probe", day, shard))
            tel = self.telemetry
            outcomes: Dict[str, object] = {}
            healths: List[object] = []
            max_wall_s = 0.0
            max_cpu_s = 0.0
            merge_s = 0.0
            for index in range(len(self._conns)):
                reply = self.recv_reply(index)
                merge_start = tel.clock()
                shard_stats = self._fold_reply(
                    index, day, reply, outcomes, healths
                )
                merge_s += tel.clock() - merge_start
                wall_s, cpu_s = shard_stats
                tel.count("parallel_worker_probe_seconds_total", wall_s)
                tel.count("parallel_worker_probe_cpu_seconds_total", cpu_s)
                if wall_s > max_wall_s:
                    max_wall_s = wall_s
                if cpu_s > max_cpu_s:
                    max_cpu_s = cpu_s
        except Exception:
            # No stale siblings: a failed probe day tears the pool
            # down before the error reaches the study.
            self.close()
            raise
        tel.count("parallel_probes_total", len(probes))
        tel.count("parallel_merge_seconds_total", merge_s)
        # The slowest shard bounds the pass on an unconstrained host;
        # the benchmark reads these to compute the parallel critical
        # path (CPU seconds on core-starved hosts, where concurrent
        # workers' wall clocks count each other's timeslices).
        tel.count("parallel_critical_probe_seconds_total", max_wall_s)
        tel.count("parallel_critical_probe_cpu_seconds_total", max_cpu_s)
        return outcomes, healths

    def _fold_reply(
        self,
        index: int,
        day: int,
        reply: tuple,
        outcomes: Dict[str, object],
        healths: List[object],
    ) -> Tuple[float, float]:
        """Validate one worker reply and fold its payload in.

        Returns the worker's ``(wall_seconds, cpu_seconds)`` shard
        timings.  Deserialise + fold happen here — the parent's own
        share of the merge barrier — so callers can time it apart
        from the time they spend blocked waiting.
        """
        if reply[0] == "error":
            raise ParallelError(
                f"probe worker {index} failed:\n{reply[1]}"
            )
        if reply[0] != "result" or reply[1] != day:
            raise ParallelError(
                f"probe worker {index} sent unexpected reply "
                f"{reply[0]!r} while probing day {day}"
            )
        shard_outcomes, shard_health, registry = pickle.loads(reply[2])
        outcomes.update(shard_outcomes)
        if shard_health is not None:
            healths.append(shard_health)
        if registry is not None and self.telemetry.enabled:
            self.telemetry.metrics.merge(registry)
        return reply[3], reply[4]

    def close(self) -> None:
        """Stop the pool (idempotent; safe on a half-started engine).

        Escalation ladder per worker: a cooperative ``stop`` message,
        then SIGTERM, then SIGKILL — each rung bounded by
        :attr:`join_timeout` — so even a worker that ignores SIGTERM
        (wedged in uninterruptible C code, masked signals) never
        outlives the campaign.
        """
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass  # worker already gone; join/terminate below
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                # SIGTERM ignored or masked: SIGKILL cannot be, and a
                # killed process always reaps, so this join is bounded.
                proc.kill()
                proc.join()
        self._procs = []
        self._conns = []
        self._advanced = None
