"""The parent-side worker-pool engine for the daily probe pass.

:class:`ParallelEngine` owns N long-lived worker processes (``spawn``
context — the entry point must be importable, and a spawned child
shares no inherited state with the parent), keeps their world
replicas advanced to the campaign day, and runs the sharded probe
pass: ship each worker its shard, collect the outcome maps, fold the
per-worker telemetry registries into the campaign registry at the
day barrier.

Lifecycle, as the study drives it: the engine is constructed per
``run()`` call, started lazily at the first live monitor stage (the
bootstrap payload is a snapshot of the world *as of that day*, so
fresh runs, resumes and forks all bootstrap identically), nudged at
every world stage via :meth:`begin_day` so replicas advance while
the parent generates its own day, and closed in a ``finally`` when
the run ends.  Workers are daemons: a SIGKILLed campaign (chaos
harness) takes its pool down with it, and a resumed campaign simply
starts a fresh pool.

The engine is deliberately *not* part of campaign state: anchors
never serialise it, resume replay always runs sequentially, and the
same store can be written under any worker count.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, ParallelError
from repro.parallel.sharding import Probe, assign_shards
from repro.parallel.worker import worker_main
from repro.simulation.world import World
from repro.telemetry import Telemetry
from repro.twitter.service import TwitterService

__all__ = ["ParallelEngine", "world_bootstrap"]


def world_bootstrap(world: World) -> bytes:
    """Pickle the replica bootstrap payload for ``world``.

    The replica needs the platform services (registered groups, their
    lazily materialised caches, the per-platform creator-assigner
    streams) and the spawn-phase bookkeeping, but none of the Twitter
    side: the clone swaps in an empty Twitter service and drops tweet
    buffers, pending share events and ground truths.  Platform-service
    telemetry handles are detached for the duration of the dump (the
    services are shared with the live study) so the payload never
    drags the campaign's span log across process boundaries.
    """
    clone = object.__new__(World)
    clone.__dict__ = dict(world.__dict__)
    clone.twitter = TwitterService()
    clone._first_tweets = {}
    clone._pending = {}
    clone.truths = {}
    clone._last_control_tweet_id = None
    services = list(world.platforms.values())
    saved = [service.telemetry for service in services]
    try:
        for service in services:
            service.telemetry = None
        return pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for service, handle in zip(services, saved):
            service.telemetry = handle


class ParallelEngine:
    """N probe workers plus the merge bookkeeping to drive them.

    ``mode`` selects what the workers compute (see
    :mod:`repro.parallel.worker`): ``"snapshot"`` ships finished
    snapshots plus a health-ledger delta per shard (fault-free
    campaigns, where all accounting is order-independent), while
    ``"replay"`` ships raw preview outcomes for the parent to replay
    sequentially (campaigns with a fault plan, whose injector draws
    are order-dependent).  Snapshot mode needs ``monitor_params`` —
    the phone-hasher salt and resilience seed the worker-side monitor
    replicas must share with the campaign's.
    """

    def __init__(
        self,
        workers: int,
        telemetry: Optional[Telemetry] = None,
        *,
        mode: str = "replay",
        monitor_params: Optional[Dict[str, object]] = None,
    ) -> None:
        if (
            not isinstance(workers, int)
            or isinstance(workers, bool)
            or workers < 1
        ):
            raise ConfigError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if mode not in ("snapshot", "replay"):
            raise ConfigError(
                f"engine mode must be 'snapshot' or 'replay', got {mode!r}"
            )
        if mode == "snapshot" and not monitor_params:
            raise ConfigError(
                "snapshot mode requires monitor_params (salt, seed)"
            )
        self.workers = workers
        self.mode = mode
        self._monitor_params = monitor_params
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._conns: List[object] = []
        #: Day the replicas are advanced through (None before start).
        self._advanced: Optional[int] = None

    @property
    def started(self) -> bool:
        """Whether the worker pool is up."""
        return bool(self._procs)

    def start(self, world: World, day: int) -> None:
        """Spawn the pool, bootstrapping replicas from ``world``.

        ``world`` must be generated through ``day``; the replicas
        start advanced to the same point.
        """
        if self.started:
            raise ParallelError("parallel engine is already started")
        blob = world_bootstrap(world)
        enabled = self.telemetry.enabled
        try:
            for index in range(self.workers):
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(child_conn,),
                    name=f"repro-probe-worker-{index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                parent_conn.send(
                    (
                        "bootstrap",
                        blob,
                        enabled,
                        self.mode,
                        self._monitor_params,
                    )
                )
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception:
            self.close()
            raise
        self._advanced = day
        self.telemetry.gauge("parallel_workers", self.workers)
        self.telemetry.count("parallel_pool_starts_total")

    def begin_day(self, day: int) -> None:
        """Advance every replica through ``day`` (no-op before start).

        The study calls this at the world stage, so replicas advance
        while the parent generates its own (much heavier) day.
        """
        if not self.started or self._advanced is None:
            return
        while self._advanced < day:
            self._advanced += 1
            for conn in self._conns:
                conn.send(("advance", self._advanced))

    def probe_day(
        self, day: int, probes: Iterable[Probe]
    ) -> Tuple[Dict[str, object], List[object]]:
        """Run day ``day``'s sharded probe pass.

        Returns ``(outcomes, healths)``: the merged outcome map
        (``canonical -> Snapshot`` in snapshot mode, ``url ->
        (kind, preview)`` in replay mode) and the per-shard
        health-ledger deltas (empty in replay mode — the parent's own
        replay keeps the ledger there).

        Shards are assigned by canonical URL
        (:func:`~repro.parallel.sharding.assign_shards`); replies are
        collected from every worker — the pipe protocol is FIFO, so a
        fixed worker iteration order makes the merge deterministic —
        and per-worker metric registries are folded into the campaign
        registry here, at the day barrier.
        """
        if not self.started:
            raise ParallelError("parallel engine is not started")
        if self._advanced is not None and day < self._advanced:
            raise ParallelError(
                f"cannot probe day {day}: replicas already advanced "
                f"through day {self._advanced}"
            )
        self.begin_day(day)
        probes = list(probes)
        shards = assign_shards(probes, self.workers)
        for conn, shard in zip(self._conns, shards):
            conn.send(("probe", day, shard))
        tel = self.telemetry
        outcomes: Dict[str, object] = {}
        healths: List[object] = []
        max_wall_s = 0.0
        max_cpu_s = 0.0
        merge_s = 0.0
        for index in range(len(self._conns)):
            reply = self._recv(index)
            if reply[0] == "error":
                raise ParallelError(
                    f"probe worker {index} failed:\n{reply[1]}"
                )
            if reply[0] != "result" or reply[1] != day:
                raise ParallelError(
                    f"probe worker {index} sent unexpected reply "
                    f"{reply[0]!r} while probing day {day}"
                )
            # Deserialise + fold, timed apart from the blocking recv:
            # this is the parent's own share of the merge barrier.
            merge_start = tel.clock()
            shard_outcomes, shard_health, registry = pickle.loads(reply[2])
            outcomes.update(shard_outcomes)
            if shard_health is not None:
                healths.append(shard_health)
            if registry is not None and tel.enabled:
                tel.metrics.merge(registry)
            merge_s += tel.clock() - merge_start
            wall_s, cpu_s = reply[3], reply[4]
            tel.count("parallel_worker_probe_seconds_total", wall_s)
            tel.count("parallel_worker_probe_cpu_seconds_total", cpu_s)
            if wall_s > max_wall_s:
                max_wall_s = wall_s
            if cpu_s > max_cpu_s:
                max_cpu_s = cpu_s
        tel.count("parallel_probes_total", len(probes))
        tel.count("parallel_merge_seconds_total", merge_s)
        # The slowest shard bounds the pass on an unconstrained host;
        # the benchmark reads these to compute the parallel critical
        # path (CPU seconds on core-starved hosts, where concurrent
        # workers' wall clocks count each other's timeslices).
        tel.count("parallel_critical_probe_seconds_total", max_wall_s)
        tel.count("parallel_critical_probe_cpu_seconds_total", max_cpu_s)
        return outcomes, healths

    def _recv(self, index: int):
        try:
            return self._conns[index].recv()
        except EOFError as exc:
            raise ParallelError(
                f"probe worker {index} died without replying"
            ) from exc

    def close(self) -> None:
        """Stop the pool (idempotent; safe on a half-started engine)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass  # worker already gone; join/terminate below
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        self._conns = []
        self._advanced = None
