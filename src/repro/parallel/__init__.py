"""Deterministic multi-worker execution engine for the daily probe pass.

At paper scale the daily metadata monitor visits ~20k URLs per day —
the dominant cost of a campaign day — and every probe is independent
of every other: the platform simulators materialise state from RNG
streams derived per *key* (``derive_seed(root_seed, key)``), never
from a shared stream whose state depends on call order.  This package
exploits that to shard the probe pass across N worker processes while
keeping the campaign's output byte-identical to the sequential path
for any N.

Each worker holds a *world replica* — the platform services only,
bootstrapped from the parent and advanced day by day via
:meth:`~repro.simulation.world.World.generate_day_groups`.  Probes
are assigned to shards by a stable hash of the canonical URL (never
worker id or arrival order), and every draw a probe triggers comes
from a per-key derived stream, so its outcome is a pure function of
(seed, canonical URL, day) no matter which worker computes it.

How much of a probe is sharded depends on whether the campaign runs a
fault plan:

* **Snapshot mode (fault-free).**  Without an injector, *everything*
  per-probe is either pure (the preview, the executor's success path,
  snapshot construction, phone hashing) or a commutative counter (the
  health ledger, metric counters).  Workers therefore run their shard
  through a real :class:`~repro.core.monitor.MetadataMonitor` replica
  and ship finished snapshots plus a per-day ledger delta; the parent
  folds them in canonical record order via
  :meth:`~repro.core.monitor.MetadataMonitor.merge_day`, leaving only
  O(1)-per-probe work on the campaign's critical path.

* **Replay mode (fault plan active).**  Fault-injector draws are
  per-endpoint sequential counters — order-dependent by design — so
  workers compute only the pure preview outcomes, and the parent
  replays the day through the *unchanged* ``observe_day`` loop in
  canonical record order, with replay clients that return the
  precomputed outcomes.  Fault draws, retry/backoff schedules,
  circuit-breaker transitions, health-ledger bumps and phone hashing
  all happen exactly where — and in exactly the order — the
  sequential path performs them.

Both modes make exports, checkpoints and fsck digests identical by
construction rather than by reconciliation.

Per-worker telemetry lands in private registries that the parent folds
in at the day barrier via
:meth:`~repro.telemetry.registry.MetricsRegistry.merge`.
"""

from repro.parallel.engine import ParallelEngine, world_bootstrap
from repro.parallel.replay import (
    ReplayDiscordAPI,
    ReplayPreviewClient,
    build_replay_clients,
)
from repro.parallel.sharding import assign_shards, lost_probes, shard_of
from repro.parallel.supervisor import (
    ShardReexecutor,
    SupervisedEngine,
    SupervisionPolicy,
)
from repro.parallel.worker import (
    build_probe_clients,
    compute_replay,
    compute_snapshots,
)

__all__ = [
    "ParallelEngine",
    "ReplayDiscordAPI",
    "ReplayPreviewClient",
    "ShardReexecutor",
    "SupervisedEngine",
    "SupervisionPolicy",
    "assign_shards",
    "build_probe_clients",
    "build_replay_clients",
    "compute_replay",
    "compute_snapshots",
    "lost_probes",
    "shard_of",
    "world_bootstrap",
]
