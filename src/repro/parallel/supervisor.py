"""Self-healing supervision over the parallel probe engine.

:class:`SupervisedEngine` wraps a :class:`~repro.parallel.engine.
ParallelEngine` in the same driving surface the study uses
(``start`` / ``begin_day`` / ``probe_day`` / ``close``) and adds the
three things a multi-year campaign needs from its worker pool:

* **Detection.**  The blind per-worker ``recv`` barrier becomes a
  multiplexed wait over every pending reply pipe *and* every worker's
  process sentinel (:func:`multiprocessing.connection.wait`), bounded
  by a per-day reply deadline.  A crashed worker is noticed the
  instant its sentinel fires; a hung worker — alive but silent — is
  declared lost when the deadline lapses.  Neither blocks the
  campaign forever.

* **Deterministic shard re-execution.**  A lost worker's shard is
  replayed in the parent by the *same* pure compute functions the
  workers run (:func:`~repro.parallel.worker.compute_snapshots` /
  :func:`~repro.parallel.worker.compute_replay`) over clients built
  on the parent's own world.  Probe outcomes are pure functions of
  (seed, canonical URL, day) — that is the engine's founding
  invariant — so the healed day's outcome map is byte-identical to
  the one the lost worker would have shipped, and the day-barrier
  merge proceeds as if nothing happened.

* **Bounded restarts, then graceful degradation.**  At the next probe
  day the supervisor respawns each lost worker from a fresh
  :func:`~repro.parallel.engine.world_bootstrap` of the parent world
  (which is exactly where the lost replica's advances would have left
  it), with a per-worker restart budget and a seeded backoff drawn
  through :func:`repro.resilience.retry.backoff_hours` — simulated-
  time bookkeeping, like every other delay in this codebase, recorded
  in telemetry rather than slept.  When any worker exhausts its
  budget the supervisor closes the pool and degrades: the rest of the
  campaign runs sequentially (the study drops to its plain
  ``observe_day`` loop), finishing with byte-identical artefacts.

Everything the supervisor does is recorded off the artefact path in
telemetry counters: ``parallel_worker_crashes_total`` (labelled by
``reason=crash|deadline``), ``parallel_worker_restarts_total``,
``parallel_shard_reexecutions_total``, ``parallel_reexecuted_probes_
total``, ``parallel_worker_deadline_misses_total``,
``parallel_restart_backoff_seconds_total`` and
``parallel_degraded_total``.

Deterministic failures are *not* healed: a worker that replies
``("error", traceback)`` hit an exception the re-execution would hit
identically, so the supervisor tears the pool down and lets the
:class:`~repro.errors.ParallelError` propagate — retrying
deterministic bugs forever is how supervisors turn one crash into a
hot loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, ParallelError
from repro.parallel.engine import ParallelEngine
from repro.parallel.sharding import Probe, assign_shards, lost_probes
from repro.parallel.worker import (
    build_probe_clients,
    compute_replay,
    compute_snapshots,
)
from repro.resilience.retry import RetryPolicy, backoff_hours
from repro.telemetry import Telemetry

__all__ = [
    "DEFAULT_WORKER_DEADLINE_S",
    "DEFAULT_WORKER_RESTARTS",
    "ShardReexecutor",
    "SupervisedEngine",
    "SupervisionPolicy",
]

#: How long the supervisor waits for a worker's probe reply before
#: declaring the worker hung.  Generous: a shard at paper scale takes
#: seconds, and a false positive costs a respawn plus an in-parent
#: re-execution (correct, just slower).
DEFAULT_WORKER_DEADLINE_S = 300.0

#: Per-worker restart budget before the pool degrades to sequential.
DEFAULT_WORKER_RESTARTS = 2


@dataclass(frozen=True)
class SupervisionPolicy:
    """The supervisor's knobs, validated once at construction.

    Attributes:
        deadline_s: Per-day reply deadline per worker (``--worker-
            deadline``).  Measured from the moment shards are shipped.
        max_restarts: Restart budget per worker slot (``--worker-
            restarts``); 0 means a single loss degrades the pool.
        backoff_seed: Seed of the restart-backoff jitter stream
            (the study seed, so forked campaigns re-derive it).
        wait_slice_s: Upper bound on one multiplexed wait, so the
            deadline is honoured even if no event ever fires.
    """

    deadline_s: float = DEFAULT_WORKER_DEADLINE_S
    max_restarts: int = DEFAULT_WORKER_RESTARTS
    backoff_seed: int = 0
    wait_slice_s: float = 0.1

    def __post_init__(self) -> None:
        if not self.deadline_s > 0:
            raise ConfigError(
                f"worker deadline must be positive, got {self.deadline_s!r}"
            )
        if (
            not isinstance(self.max_restarts, int)
            or isinstance(self.max_restarts, bool)
            or self.max_restarts < 0
        ):
            raise ConfigError(
                "worker restart budget must be a non-negative integer, "
                f"got {self.max_restarts!r}"
            )
        if not self.wait_slice_s > 0:
            raise ConfigError(
                f"wait slice must be positive, got {self.wait_slice_s!r}"
            )


class ShardReexecutor:
    """In-parent deterministic re-execution of lost probe shards.

    Built over the parent's *live* world: probe outcomes are pure
    per-key functions, so clients over the parent's platform services
    observe exactly what a worker replica's clients would have — the
    same reason the replicas are trustworthy in the first place.
    Clients are built lazily (a crash-free campaign never pays for
    them) and reused across re-executions.
    """

    def __init__(
        self,
        world,
        telemetry: Telemetry,
        mode: str,
        monitor_params: Optional[Dict[str, object]],
    ) -> None:
        self._world = world
        self._telemetry = telemetry
        self._mode = mode
        self._monitor_params = monitor_params
        self._clients: Optional[Dict[str, object]] = None

    def execute(
        self, day: int, probes: List[Probe]
    ) -> Tuple[Dict[str, object], Optional[object]]:
        """Compute ``probes``' outcomes exactly as a worker would.

        Returns the mode-shaped ``(outcomes, health_delta_or_None)``
        pair a worker reply carries.  Per-probe telemetry lands
        directly in the campaign registry — the same totals the lost
        worker's merged shard registry would have contributed.
        """
        if self._clients is None:
            self._clients = build_probe_clients(self._world)
        if self._mode == "snapshot":
            return compute_snapshots(
                self._clients,
                self._telemetry,
                self._monitor_params or {},
                day,
                probes,
            )
        return compute_replay(self._clients, day, probes)


class SupervisedEngine:
    """A :class:`ParallelEngine` that survives its workers.

    Presents the engine's driving surface (``mode``, ``started``,
    ``start``, ``begin_day``, ``probe_day``, ``close``) so the study
    drives either interchangeably, plus :attr:`degraded`, which the
    study checks after each probe day to drop to the sequential loop
    once the pool is gone for good.

    ``kill_hook`` is the chaos harness's injection point: called with
    the day number right after shards are shipped (mid-probe, the
    worst moment), an index it returns is SIGKILLed on the spot.
    """

    def __init__(
        self,
        engine: ParallelEngine,
        *,
        policy: Optional[SupervisionPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        kill_hook: Optional[Callable[[int], Optional[int]]] = None,
    ) -> None:
        self._engine = engine
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.telemetry = (
            telemetry if telemetry is not None else engine.telemetry
        )
        self.kill_hook = kill_hook
        #: True once a worker exhausted its restart budget and the
        #: pool was closed; the study reads this to finish the
        #: campaign on its sequential path.
        self.degraded = False
        #: index -> loss reason ("crash" | "deadline") for workers
        #: lost but not yet healed.
        self._lost: Dict[int, str] = {}
        self._restarts: List[int] = []
        self._world = None
        self._reexec: Optional[ShardReexecutor] = None

    # -- engine surface ----------------------------------------------------

    @property
    def mode(self) -> str:
        return self._engine.mode

    @property
    def workers(self) -> int:
        return self._engine.workers

    @property
    def started(self) -> bool:
        # A degraded supervisor is still "running" — its probe_day
        # serves the current day sequentially — so the study must not
        # try to start it again.
        return self.degraded or self._engine.started

    def start(self, world, day: int) -> None:
        self._engine.start(world, day)
        self._world = world
        self._restarts = [0] * self._engine.workers
        self._reexec = ShardReexecutor(
            world,
            self.telemetry,
            self._engine.mode,
            self._engine._monitor_params,
        )

    def begin_day(self, day: int) -> None:
        """Advance live replicas; a worker dead between days is marked
        lost (healed at the next probe day) instead of failing the
        campaign."""
        if self.degraded or not self._engine.started:
            return
        engine = self._engine
        if engine._advanced is None:
            return
        while engine._advanced < day:
            engine._advanced += 1
            for index in range(engine.workers):
                if index in self._lost:
                    continue
                try:
                    engine.advance_worker(index, engine._advanced)
                except ParallelError:
                    self._mark_lost(index, "crash")

    def close(self) -> None:
        self._engine.close()
        self._lost.clear()

    # -- loss bookkeeping --------------------------------------------------

    def _mark_lost(self, index: int, reason: str) -> None:
        """Record worker ``index`` as lost and make sure it is dead.

        Idempotent per loss; the slot stays lost until :meth:`_heal`
        either respawns it or degrades the pool.
        """
        if index in self._lost:
            return
        self._lost[index] = reason
        self.telemetry.count(
            "parallel_worker_crashes_total", reason=reason
        )
        if reason == "deadline":
            self.telemetry.count("parallel_worker_deadline_misses_total")
        # A hung worker still holds a stale replica and a wedged pipe;
        # a crashed one needs reaping.  Either way: stop it hard.
        self._engine.stop_worker(index)

    def _heal(self) -> None:
        """Respawn every lost worker, or degrade if a budget is out.

        Called at the top of each probe day: the parent world is
        generated through the day the replicas are advanced to, so a
        fresh bootstrap lands the respawned replica exactly where the
        lost one stood.  The backoff a real supervisor would sleep is
        seeded bookkeeping (:func:`backoff_hours`), recorded in
        telemetry — the campaign clock never moves for it.
        """
        if not self._lost:
            return
        for index in sorted(self._lost):
            if self._restarts[index] >= self.policy.max_restarts:
                self._degrade()
                return
        for index in sorted(self._lost):
            self._restarts[index] += 1
            delay_h = backoff_hours(
                RetryPolicy(),
                self._restarts[index],
                self.policy.backoff_seed,
                f"parallel/worker{index}/restart",
            )
            self.telemetry.count(
                "parallel_restart_backoff_seconds_total", delay_h * 3600.0
            )
            self._engine.respawn_worker(index, self._world)
            self.telemetry.count("parallel_worker_restarts_total")
        self._lost.clear()

    def _degrade(self) -> None:
        """Close the pool for good; the campaign finishes sequentially."""
        if self.degraded:
            return
        self.degraded = True
        self.telemetry.count("parallel_degraded_total")
        self._engine.close()
        self._lost.clear()

    # -- the supervised probe pass -----------------------------------------

    def probe_day(
        self, day: int, probes: Iterable[Probe]
    ) -> Tuple[Dict[str, object], List[object]]:
        """Day ``day``'s probe pass, guaranteed to complete.

        Same contract as :meth:`ParallelEngine.probe_day`; in
        addition, worker crashes and deadline misses are healed by
        in-parent shard re-execution, so the returned outcome map is
        always complete.  Only a deterministic worker error (an
        ``"error"`` reply) propagates, after the pool is closed.
        """
        probes = list(probes)
        if self.degraded:
            return self._probe_degraded(day, probes)
        if not self._engine.started:
            raise ParallelError("parallel engine is not started")
        self._heal()
        if self.degraded:
            return self._probe_degraded(day, probes)

        engine = self._engine
        self.begin_day(day)
        shards = assign_shards(probes, engine.workers)
        sent: List[int] = []
        for index, shard in enumerate(shards):
            if index in self._lost:
                continue
            try:
                engine.send_to(index, ("probe", day, shard))
                sent.append(index)
            except ParallelError:
                self._mark_lost(index, "crash")
        if self.kill_hook is not None:
            victim = self.kill_hook(day)
            if victim is not None:
                engine.sigkill_worker(victim)

        tel = self.telemetry
        outcomes: Dict[str, object] = {}
        healths: List[object] = []
        replies: Dict[int, tuple] = {}
        folded = {"next": 0, "merge_s": 0.0, "max_wall": 0.0, "max_cpu": 0.0}

        def drain() -> None:
            # Fold ready replies the moment index order allows, so the
            # parent's merge work overlaps the still-computing shards —
            # exactly the overlap the bare engine's index-order recv
            # loop gets — without perturbing the deterministic fold
            # order (lost slots are skipped; their shards re-execute
            # after the barrier).
            while folded["next"] < len(shards):
                index = folded["next"]
                reply = replies.get(index)
                if reply is None:
                    if index not in self._lost:
                        return
                    folded["next"] += 1
                    continue
                merge_start = tel.clock()
                try:
                    wall_s, cpu_s = engine._fold_reply(
                        index, day, reply, outcomes, healths
                    )
                except ParallelError:
                    # Deterministic worker failure (or protocol
                    # breakage): re-execution would fail identically,
                    # so this is the one loss supervision must not
                    # heal.  No stale siblings survive the raise.
                    self.close()
                    raise
                folded["merge_s"] += tel.clock() - merge_start
                tel.count("parallel_worker_probe_seconds_total", wall_s)
                tel.count("parallel_worker_probe_cpu_seconds_total", cpu_s)
                folded["max_wall"] = max(folded["max_wall"], wall_s)
                folded["max_cpu"] = max(folded["max_cpu"], cpu_s)
                folded["next"] += 1

        self._collect(day, sent, replies, drain)
        drain()

        lost_now = [i for i in self._lost if shards[i]]
        if lost_now:
            replay = lost_probes(shards, lost_now)
            reexec_start = tel.clock()
            extra, health = self._reexec.execute(day, replay)
            outcomes.update(extra)
            if health is not None:
                healths.append(health)
            tel.count(
                "parallel_reexec_seconds_total", tel.clock() - reexec_start
            )
            tel.count("parallel_shard_reexecutions_total", len(lost_now))
            tel.count("parallel_reexecuted_probes_total", len(replay))

        tel.count("parallel_probes_total", len(probes))
        tel.count("parallel_merge_seconds_total", folded["merge_s"])
        tel.count(
            "parallel_critical_probe_seconds_total", folded["max_wall"]
        )
        tel.count(
            "parallel_critical_probe_cpu_seconds_total", folded["max_cpu"]
        )
        return outcomes, healths

    def _collect(
        self,
        day: int,
        pending: List[int],
        replies: Dict[int, tuple],
        drain: Callable[[], None],
    ) -> None:
        """Gather replies from ``pending`` workers under the deadline.

        Multiplexes every pending reply pipe and process sentinel in
        one OS-level wait, so a crash wakes the parent immediately and
        an idle barrier costs no polling spin.  ``drain`` runs after
        every sweep so the caller folds whatever just became ready.
        Workers that miss the deadline, or die before replying, are
        marked lost; their shards are the caller's to re-execute.
        """
        engine = self._engine
        pending = list(pending)
        deadline_at = time.monotonic() + self.policy.deadline_s
        while pending:
            conn_of = {engine._conns[i]: i for i in pending}
            sentinel_of = {engine.worker_sentinel(i): i for i in pending}
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                for index in pending:
                    self._mark_lost(index, "deadline")
                return
            ready = _wait_connections(
                list(conn_of) + list(sentinel_of),
                timeout=min(remaining, self.policy.wait_slice_s),
            )
            # Pipes first: a worker that replied and *then* died (or
            # was stopped) must have its reply honoured, not its
            # death.
            for obj in ready:
                index = conn_of.get(obj)
                if index is None or index not in pending:
                    continue
                try:
                    replies[index] = engine.recv_reply(index)
                except ParallelError:
                    self._mark_lost(index, "crash")
                pending.remove(index)
            for obj in ready:
                index = sentinel_of.get(obj)
                if index is None or index not in pending:
                    continue
                if engine.poll_reply(index, 0.0):
                    continue  # drained next sweep, pipe-first again
                self._mark_lost(index, "crash")
                pending.remove(index)
            drain()

    def _probe_degraded(
        self, day: int, probes: List[Probe]
    ) -> Tuple[Dict[str, object], List[object]]:
        """The current day's pass after degradation: all in-parent.

        Only ever serves the probe day on which the budget ran out —
        the study drops the supervisor for the days after.
        """
        outcomes, health = self._reexec.execute(day, probes)
        healths = [health] if health is not None else []
        self.telemetry.count("parallel_probes_total", len(probes))
        return outcomes, healths
