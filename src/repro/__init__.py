"""repro — reproduction of "Demystifying the Messaging Platforms'
Ecosystem Through the Lens of Twitter" (IMC 2020).

Public entry points:

* :class:`repro.core.Study` / :class:`repro.core.StudyConfig` — run the
  full 38-day measurement campaign against a simulated ecosystem.
* :mod:`repro.analysis` — every analysis of Sections 4-6, one function
  per table/figure.
* :mod:`repro.reporting` — renderers that print the paper's tables and
  figure series.
* :class:`repro.telemetry.Telemetry` — opt-in metrics, span tracing,
  and per-stage profiling over a campaign (off by default).

Quickstart::

    from repro import Study, StudyConfig

    dataset = Study(StudyConfig(seed=7, scale=0.01)).run()
    print(len(dataset.records), "group URLs discovered")
"""

from repro.core.study import Study, StudyConfig
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = ["Study", "StudyConfig", "Telemetry", "__version__"]
