"""Seeded load harness for the serve daemon.

Replays deterministic client *personas* against a running daemon with
stdlib threads and ``urllib`` — no external load tool.  The persona
names come from the scenario registry
(:mod:`repro.scenarios.personas`): the same population the simulated
groups are drawn from also drives the query-side load, each name
mapped to the access pattern that behaviour implies:

``lurker``
    light touch: occasional small day slices plus status polls;
``poster``
    pages day slices (``/v1/day/{n}`` with varying ``limit`` and
    ``platform`` params) and the day index — the cache-heavy,
    unpickle-bound read path;
``spammer``
    hammers one fixed hot endpoint (the latest published day) — the
    maximal-cache-contention fast path;
``admin``
    rotates status, health and metrics — what an operator dashboard
    and a Prometheus scrape do.

Every client owns a ``random.Random(seed, client-index)`` stream, so
a given (seed, clients, requests, published days) replays the exact
same request sequence; the report is deterministic up to timing.  The
bench harness (``benchmarks/bench_serve.py``) gates throughput and
p99 latency on this report.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.scenarios import persona_names

__all__ = [
    "LoadReport",
    "PERSONAS",
    "percentile",
    "run_load",
]

#: Load personas, drawn from the scenario registry (everything but the
#: identity ``baseline``, which has no distinctive access pattern).
PERSONAS = tuple(
    name for name in persona_names() if name != "baseline"
)

_PLATFORMS = ("whatsapp", "telegram", "discord")


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values))
    index = min(len(sorted_values) - 1, max(0, rank - 1))
    return sorted_values[index]


@dataclass
class _PersonaStats:
    requests: int = 0
    errors: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    latencies_s: List[float] = field(default_factory=list)


@dataclass
class LoadReport:
    """The outcome of one load run, aggregated per persona."""

    url: str
    clients: int
    requests_per_client: int
    seed: int
    duration_s: float
    personas: Dict[str, _PersonaStats]

    @property
    def total_requests(self) -> int:
        return sum(s.requests for s in self.personas.values())

    @property
    def total_errors(self) -> int:
        return sum(s.errors for s in self.personas.values())

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_requests / self.duration_s

    def latency(self, q: float, persona: Optional[str] = None) -> float:
        """The q-quantile latency in seconds (one persona or all)."""
        if persona is not None:
            values = sorted(self.personas[persona].latencies_s)
        else:
            values = sorted(
                v
                for stats in self.personas.values()
                for v in stats.latencies_s
            )
        return percentile(values, q)

    def format_table(self) -> str:
        """A fixed-width summary table, one row per persona + total."""
        lines = [
            f"load: {self.clients} clients x "
            f"{self.requests_per_client} requests against {self.url} "
            f"(seed {self.seed})",
            f"{'persona':<10} {'reqs':>6} {'errs':>5} {'hits':>6} "
            f"{'miss':>6} {'p50_ms':>8} {'p95_ms':>8} {'p99_ms':>8}",
        ]
        rows = [(name, self.personas[name]) for name in PERSONAS]
        total = _PersonaStats()
        for _, stats in rows:
            total.requests += stats.requests
            total.errors += stats.errors
            total.cache_hits += stats.cache_hits
            total.cache_misses += stats.cache_misses
            total.latencies_s.extend(stats.latencies_s)
        for name, stats in rows + [("total", total)]:
            values = sorted(stats.latencies_s)
            lines.append(
                f"{name:<10} {stats.requests:>6} {stats.errors:>5} "
                f"{stats.cache_hits:>6} {stats.cache_misses:>6} "
                f"{percentile(values, 0.50) * 1e3:>8.2f} "
                f"{percentile(values, 0.95) * 1e3:>8.2f} "
                f"{percentile(values, 0.99) * 1e3:>8.2f}"
            )
        lines.append(
            f"duration {self.duration_s:.3f}s  "
            f"throughput {self.throughput_rps:.1f} req/s  "
            f"errors {self.total_errors}"
        )
        return "\n".join(lines)


def _fetch(url: str, timeout: float) -> Tuple[int, Optional[str]]:
    """(status, X-Cache header) for one GET; errors as status codes."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            response.read()
            return response.status, response.headers.get("X-Cache")
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code, None
    except (urllib.error.URLError, OSError):
        return 599, None


def _persona_url(
    persona: str, base: str, rng: Random, days: List[int], step: int
) -> str:
    if persona == "poster":
        if not days or step % 7 == 0:
            return f"{base}/v1/days"
        day = rng.choice(days)
        roll = rng.random()
        if roll < 0.3:
            return f"{base}/v1/day/{day}"
        if roll < 0.6:
            return f"{base}/v1/day/{day}?limit={rng.choice((5, 10, 20))}"
        return f"{base}/v1/day/{day}?platform={rng.choice(_PLATFORMS)}"
    if persona == "lurker":
        if not days or step % 4 == 0:
            return f"{base}/v1/status"
        return f"{base}/v1/day/{rng.choice(days)}?limit=5"
    if persona == "spammer":
        # One fixed hot URL — every spammer client converges on the
        # latest published day, the maximal cache-key contention path.
        if not days:
            return f"{base}/v1/days"
        return f"{base}/v1/day/{max(days)}"
    if persona == "admin":
        roll = step % 3
        if roll == 0 and days:
            return f"{base}/v1/health"
        if roll == 1:
            return f"{base}/metrics"
        return f"{base}/v1/status"
    raise ConfigError(f"unknown persona {persona!r}")


class _Client(threading.Thread):
    def __init__(
        self,
        base: str,
        persona: str,
        rng: Random,
        n_requests: int,
        days: List[int],
        timeout: float,
        start_barrier: threading.Barrier,
    ) -> None:
        super().__init__(name=f"load-{persona}", daemon=True)
        self.base = base
        self.persona = persona
        self.rng = rng
        self.n_requests = n_requests
        self.days = days
        self.timeout = timeout
        self.start_barrier = start_barrier
        self.stats = _PersonaStats()

    def run(self) -> None:
        self.start_barrier.wait()
        for step in range(self.n_requests):
            url = _persona_url(
                self.persona, self.base, self.rng, self.days, step
            )
            started = time.perf_counter()
            status, x_cache = _fetch(url, self.timeout)
            elapsed = time.perf_counter() - started
            self.stats.requests += 1
            self.stats.latencies_s.append(elapsed)
            if status >= 400:
                self.stats.errors += 1
            if x_cache == "HIT":
                self.stats.cache_hits += 1
            elif x_cache == "MISS":
                self.stats.cache_misses += 1


def run_load(
    url: str,
    *,
    clients: int = 6,
    requests: int = 50,
    seed: int = 7,
    timeout: float = 10.0,
) -> LoadReport:
    """Drive ``clients`` persona threads against a running daemon.

    Clients are dealt round-robin across the registry personas
    (lurker, poster, spammer, admin), each with its own seeded RNG;
    all start together behind a barrier so the measured window is
    fully concurrent.
    """
    if clients < 1:
        raise ConfigError(f"clients must be >= 1, got {clients}")
    if requests < 1:
        raise ConfigError(f"requests must be >= 1, got {requests}")
    base = url.rstrip("/")
    # One pre-flight fetch of the published day index: the day-reading
    # personas replay against a fixed day set, which also keeps the
    # request sequence deterministic for a given store state.
    days: List[int] = []
    try:
        with urllib.request.urlopen(
            f"{base}/v1/days", timeout=timeout
        ) as response:
            days = [
                entry["day"]
                for entry in json.loads(response.read())["days"]
            ]
    except (urllib.error.URLError, OSError, KeyError, ValueError):
        days = []

    barrier = threading.Barrier(clients + 1)
    workers = [
        _Client(
            base,
            PERSONAS[index % len(PERSONAS)],
            Random(seed * 1_000_003 + index),
            requests,
            days,
            timeout,
            barrier,
        )
        for index in range(clients)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    duration = time.perf_counter() - started

    personas = {name: _PersonaStats() for name in PERSONAS}
    for worker in workers:
        stats = personas[worker.persona]
        stats.requests += worker.stats.requests
        stats.errors += worker.stats.errors
        stats.cache_hits += worker.stats.cache_hits
        stats.cache_misses += worker.stats.cache_misses
        stats.latencies_s.extend(worker.stats.latencies_s)
    return LoadReport(
        url=base,
        clients=clients,
        requests_per_client=requests,
        seed=seed,
        duration_s=duration,
        personas=personas,
    )
