"""The serve daemon: lifecycle, signals, and wiring.

:class:`ServeDaemon` assembles the pieces — a campaign
:class:`~repro.core.study.Study` with an attached run store, the
published-day :class:`~repro.serve.access.StoreView`, the response
cache, the serve metrics registry, the
:class:`~repro.serve.driver.CampaignDriver` thread, and the bound
:class:`~repro.serve.http.ServeHTTPServer` — and owns the shutdown
order that makes SIGTERM a *drain*:

1. ask the driver to stop; it raises out of the day hook at the next
   day boundary, **after** that day's record is durably checkpointed;
2. stop accepting connections and join every in-flight handler
   (``server_close`` with ``block_on_close``), so no client sees a
   reset mid-response;
3. exit 0 — the store passes ``repro fsck`` and the campaign resumes
   from the drained boundary, byte-identical to an uninterrupted run.

The HTTP socket is bound in ``__init__`` (so an ephemeral ``port=0``
is resolved before any thread starts), but no thread runs until
:meth:`serve`.
"""

from __future__ import annotations

import logging
import signal
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.serve.access import StoreView
from repro.serve.cache import ResponseCache
from repro.serve.config import ServeConfig
from repro.serve.driver import CampaignDriver
from repro.serve.http import ServeHTTPServer
from repro.serve.metrics import ServeMetrics
from repro.telemetry import render_prometheus_registry

__all__ = ["ServeDaemon"]

logger = logging.getLogger(__name__)


class ServeDaemon:
    """A long-lived campaign daemon: one driver, many readers."""

    def __init__(
        self,
        study,
        config: Optional[ServeConfig] = None,
        *,
        checkpoint_dir=None,
        anchor_every: int = 1,
        slices: bool = False,
        run_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.study = study
        # Telemetry is load-bearing for serve (cache counters, request
        # accounting) and proven byte-neutral for campaign artefacts.
        study.telemetry.enable()
        if study.store is None:
            if checkpoint_dir is None:
                raise ConfigError(
                    "serve needs a checkpoint directory (pass "
                    "checkpoint_dir, or a study with an attached store)"
                )
            # Every day an anchor by default: each published day is
            # directly decodable by /v1/day without replay.
            study.attach_store(checkpoint_dir, anchor_every, slices=slices)
        store = study.store
        if self.config.read_cache_entries > 0:
            store.enable_read_cache(self.config.read_cache_entries)

        self.view = StoreView(store)
        # A resumed (or finished) store already holds days: publish
        # them before any thread exists, so readers see the history.
        self.view.publish_existing()
        self.serve_metrics = ServeMetrics()
        self.cache = ResponseCache(
            self.config.cache_entries, metrics=self.serve_metrics
        )
        self.driver = CampaignDriver(
            study,
            self.view,
            day_delay_s=self.config.day_delay_s,
            run_kwargs=run_kwargs,
        )
        # Seed the published metrics snapshot pre-thread, so /metrics
        # is never empty even before the first day lands.
        self.driver.publish_metrics()
        self.server = ServeHTTPServer(
            (self.config.host, self.config.port),
            self.view,
            self.cache,
            self.serve_metrics,
            self.driver,
        )
        #: Set once both threads are running and requests are served.
        self.ready = threading.Event()
        self._stop = threading.Event()
        self._server_thread: Optional[threading.Thread] = None

    # -- addresses ---------------------------------------------------------

    @property
    def address(self):
        """The bound ``(host, port)`` — concrete even for port 0."""
        return self.server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the driver and server threads (non-blocking)."""
        self._server_thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._server_thread.start()
        self.driver.start()
        self.ready.set()
        logger.info(
            "serving %s (store %s)", self.url, self.view.directory
        )

    def serve(
        self,
        *,
        install_signals: bool = True,
        port_file=None,
    ) -> int:
        """Run until signalled (or until the campaign ends, if not
        lingering); returns the process exit code.

        SIGTERM and SIGINT are equivalent: both request a drain, and
        either way the daemon checkpoints the day boundary and exits
        0 — a Ctrl-C never leaves a torn store.  The teardown itself
        runs on this thread, never in the signal handler; a raw
        :class:`KeyboardInterrupt` (SIGINT delivered before the
        handler is installed, or with ``install_signals=False``) is
        absorbed into the same drain path.
        """
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, self._on_signal)
        self.start()
        if port_file is not None:
            Path(port_file).write_text(f"{self.address[1]}\n")
        try:
            while not self._stop.is_set():
                if self.driver.finished.is_set() and not self.config.linger:
                    break
                self._stop.wait(0.2)
        except KeyboardInterrupt:
            logger.info("keyboard interrupt; draining")
        finally:
            self.close()
        phase = self.driver.phase
        if phase == "failed":
            logger.error("campaign failed: %s", self.driver.error)
            return 1
        logger.info("daemon stopped cleanly (campaign %s)", phase)
        return 0

    def _on_signal(self, signum, frame) -> None:
        logger.info(
            "received %s; draining", signal.Signals(signum).name
        )
        self.shutdown()

    def shutdown(self) -> None:
        """Request a drain (thread- and signal-safe, returns at once)."""
        self.driver.request_stop()
        self._stop.set()

    def close(self) -> None:
        """Drain and stop everything; idempotent, blocking."""
        self.shutdown()
        if self.driver.ident is not None:
            # The driver stops at the next day boundary, after that
            # day's checkpoint record landed.
            self.driver.join()
        # Stop accepting, then join in-flight handlers
        # (block_on_close): requests already being answered finish.
        self.server.shutdown()
        self.server.server_close()
        if self._server_thread is not None:
            self._server_thread.join()
            self._server_thread = None

    # -- test hooks --------------------------------------------------------

    def scrape_state(self):
        """The exact (registry, lives) a ``/metrics`` scrape renders."""
        campaign, lives = self.view.metrics_snapshot()
        return self.serve_metrics.scrape_state(campaign, lives)

    def render_metrics(self) -> str:
        """The ``/metrics`` body, rendered off-wire (for tests)."""
        return render_prometheus_registry(*self.scrape_state())
