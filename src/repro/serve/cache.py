"""Content-digest-keyed response cache for the serve daemon.

Every cacheable HTTP endpoint renders its body from exactly one
underlying day record (or the latest one), so the natural cache key is
``(endpoint, day-record digest, sorted query params)``: the digest is
content-addressed, so a cached response stays valid for as long as the
underlying object exists — there is nothing to invalidate, a new day
simply arrives under a new digest and misses.  A day's response is
therefore computed once (the expensive part is unpickling the anchor
snapshot) and served from cache to every subsequent identical request.

The cache is a bounded LRU guarded by one lock; hit/miss/eviction
counters land both in the serve metrics registry (scraped at
``/metrics``) and in the stats block of ``/v1/status``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["CachedResponse", "ResponseCache", "cache_key"]

#: A rendered response: (HTTP status, content type, body bytes).
CachedResponse = Tuple[int, str, bytes]


def cache_key(endpoint: str, digest: str, params: Dict[str, str]) -> str:
    """The canonical cache key for one rendered response.

    ``digest`` is the content digest of the day record the response
    was derived from (the latest record's digest for whole-campaign
    views like ``/v1/health``); ``params`` are the already-validated
    query parameters.  Sorted so two spellings of the same query share
    one entry.
    """
    query = "&".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{endpoint}|{digest}|{query}"


class ResponseCache:
    """Bounded LRU of rendered responses, keyed by content digest."""

    def __init__(self, max_entries: int, metrics=None) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"response cache needs >= 1 entry, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CachedResponse]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[CachedResponse]:
        """The cached response for ``key``, bumping its recency."""
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                self.misses += 1
                if self._metrics is not None:
                    self._metrics.count("serve_cache_misses_total")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if self._metrics is not None:
                self._metrics.count("serve_cache_hits_total")
            return response

    def put(self, key: str, response: CachedResponse) -> None:
        """Insert ``response``, evicting least-recently-used entries."""
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics.count("serve_cache_evictions_total")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters and occupancy, as one dict."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }
