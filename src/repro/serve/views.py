"""Response builders: day-record slices rendered as JSON-able dicts.

Every builder takes a *decoded* day record — the full campaign state
as of one day boundary, unpickled from the store's anchor snapshot —
and slices the pieces a query client wants: the day's group timeline
snapshots, cumulative membership, deaths, and discovery totals.  The
decoded study is a private object graph (see
:meth:`repro.serve.access.StoreView.record`), so whole-campaign
renderers like :func:`~repro.reporting.render_health` can run against
it without ever touching the live campaign.

Builders are pure functions of the decoded record plus validated
query parameters; the HTTP layer caches their output keyed by the
record's content digest, so each is computed once per (digest,
params).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.dataset import StudyDataset
from repro.reporting import render_health, render_table1, render_table2

__all__ = [
    "day_slice",
    "health_body",
    "report_body",
    "snapshot_dict",
    "streaming_report_body",
]

#: Reporting order shared with the study.
_PLATFORMS = ("whatsapp", "telegram", "discord")


def snapshot_dict(snapshot) -> Dict[str, Any]:
    """One monitor snapshot as a JSON-able dict."""
    return {
        "day": snapshot.day,
        "t": snapshot.t,
        "alive": snapshot.alive,
        "state": snapshot.state,
        "size": snapshot.size,
        "online": snapshot.online,
        "title": snapshot.title,
        "kind": snapshot.kind.value if snapshot.kind is not None else None,
        "death_reason": snapshot.death_reason,
    }


def _platform_of(study, canonical: str) -> str:
    record = study.engine.records.get(canonical)
    return record.platform if record is not None else ""


def _membership(study, until_t: float) -> Dict[str, int]:
    """Groups joined per platform as of ``until_t`` (cumulative)."""
    counts = {platform: 0 for platform in _PLATFORMS}
    for record, join_t, _handle in getattr(study.joiner, "_joined", []):
        if join_t <= until_t and record.platform in counts:
            counts[record.platform] += 1
    return counts


def day_slice(
    study,
    day: int,
    platform: Optional[str] = None,
    limit: Optional[int] = None,
    group: Optional[str] = None,
) -> Dict[str, Any]:
    """The day-``day`` slice of a decoded anchor study.

    Default shape: every group observed on ``day`` (its snapshot for
    that day), the day's deaths, cumulative membership, and discovery
    totals.  ``platform`` filters to one platform, ``limit`` bounds
    the timeline list (deterministically, in sorted canonical order),
    and ``group`` returns one group's *full* timeline up to ``day``
    instead of the one-day cross-section.
    """
    snapshots = study.monitor.snapshots
    if group is not None:
        timeline = [
            snapshot_dict(s)
            for s in snapshots.get(group, [])
            if s.day <= day
        ]
        return {
            "day": day,
            "kind": "anchor",
            "group": group,
            "platform": _platform_of(study, group),
            "timeline": timeline,
            "found": bool(timeline),
        }

    timelines: List[Dict[str, Any]] = []
    deaths: List[Dict[str, Any]] = []
    observed = 0
    for canonical in sorted(snapshots):
        series = snapshots[canonical]
        todays = [s for s in series if s.day == day]
        if not todays:
            continue
        snapshot = todays[-1]
        plat = _platform_of(study, canonical)
        if platform is not None and plat != platform:
            continue
        observed += 1
        if not snapshot.alive:
            deaths.append(
                {
                    "canonical": canonical,
                    "platform": plat,
                    "reason": snapshot.death_reason,
                }
            )
        if limit is None or len(timelines) < limit:
            entry = snapshot_dict(snapshot)
            entry["canonical"] = canonical
            entry["platform"] = plat
            timelines.append(entry)
    per_platform: Dict[str, int] = {p: 0 for p in _PLATFORMS}
    for record in study.engine.records.values():
        if record.first_seen_t <= day + 1:
            per_platform[record.platform] = (
                per_platform.get(record.platform, 0) + 1
            )
    return {
        "day": day,
        "kind": "anchor",
        "observed_groups": observed,
        "returned_groups": len(timelines),
        "timelines": timelines,
        "deaths": deaths,
        "membership": _membership(study, until_t=day + 1.0),
        "discovered_urls": per_platform,
    }


def _shim_dataset(study) -> StudyDataset:
    """A dataset shim carrying what whole-campaign renderers read."""
    config = study.config
    dataset = StudyDataset(
        n_days=config.n_days,
        scale=config.scale,
        message_scale=config.message_scale,
    )
    dataset.health = study.health
    dataset.snapshots = dict(study.monitor.snapshots)
    dataset.records = dict(study.engine.records)
    return dataset


def health_body(study) -> str:
    """``/v1/health``: the collection-health report as of this anchor."""
    return render_health(_shim_dataset(study))


def report_body(study, day: int) -> str:
    """``/v1/report``: dataset summary + Table 2 + health, mid-campaign.

    Collects messages from the decoded study's joined groups up to
    the end of ``day`` — a mutation of the *decoded copy only* — then
    renders the same tables the batch CLI prints.  Before the join
    day the table simply reports zero joined groups.
    """
    config = study.config
    dataset = _shim_dataset(study)
    joined, users = study.joiner.collect(
        until_t=float(day + 1), message_scale=config.message_scale
    )
    dataset.joined = joined
    dataset.users = users
    dataset.tweets = dict(study.engine.tweets)
    header = (
        f"Campaign report as of day {day} "
        f"(seed {config.seed}, {config.n_days}-day window)"
    )
    return "\n\n".join(
        [
            header,
            render_table1(),
            render_table2(dataset),
            render_health(dataset),
        ]
    )


def streaming_report_body(store, day: int) -> str:
    """``/v1/report?source=streaming``: fold day slices and render.

    Folds the store's analysis slices for days ``0..day`` (the
    published prefix) through the bounded-memory streaming analyzer —
    no anchor unpickle, no dataset materialisation — and renders the
    full streaming report.  Joined-group sections appear once the
    end-of-campaign rollup has landed; before that they degrade to
    one-line placeholders.

    ``store`` must be a freshly opened read-only
    :class:`~repro.checkpoint.RunStore` (the manifest file lands by
    atomic rename, so a fresh open is a consistent point-in-time
    snapshot even while the driver keeps writing).
    """
    from repro.analysis.streaming import StreamingAnalyzer
    from repro.reporting.streaming import render_streaming_report

    analyzer = StreamingAnalyzer.from_store(store, through_day=day)
    config = store.manifest.get("config", {})
    header = (
        f"Streaming campaign report as of day {day} "
        f"(seed {config.get('seed')}, {config.get('n_days')}-day window)"
    )
    return header + "\n\n" + render_streaming_report(
        analyzer, float(config.get("scale", 1.0))
    )
