"""Serve-side metrics: a lock-guarded registry plus the scrape path.

The campaign's own :class:`~repro.telemetry.MetricsRegistry` is
single-writer (the driver thread) and is published to readers as an
immutable snapshot at each day boundary; the *serve* layer's metrics —
request counts, request latency, response-cache hits/misses/evictions
— are written from many HTTP threads at once, so they live in a
separate registry guarded by one lock.

``/metrics`` renders the union: a fresh registry merged from the
latest published campaign snapshot and the serve registry, through
:func:`repro.telemetry.render_prometheus_registry` — the same code
path as the file exporter, so scrape output and
``--telemetry-dir``-style file output are byte-identical for the same
registry state.  The scrape deliberately does not count itself (the
``/metrics`` route is excluded from request accounting), so repeated
scrapes of a quiesced daemon return byte-identical bodies.
"""

from __future__ import annotations

import threading
from typing import Tuple

from repro.telemetry import MetricsRegistry, render_prometheus_registry

__all__ = ["ServeMetrics"]


class ServeMetrics:
    """A thread-safe registry for the serve layer's own counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registry = MetricsRegistry()

    def count(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment a serve counter (thread-safe)."""
        with self._lock:
            self._registry.inc(name, value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Fold a value into a serve histogram (thread-safe)."""
        with self._lock:
            self._registry.observe(name, value, **labels)

    def scrape_state(
        self, campaign: MetricsRegistry, process_lives: int
    ) -> Tuple[MetricsRegistry, int]:
        """The combined registry a scrape renders, as a fresh copy.

        ``campaign`` is the latest published (immutable) campaign
        snapshot; the serve registry is merged in under the lock.
        Exposed separately from :meth:`render` so tests can feed the
        exact same state through the file exporter and assert
        byte-identity.
        """
        combined = MetricsRegistry()
        combined.merge(campaign)
        with self._lock:
            combined.merge(self._registry)
        return combined, process_lives

    def render(self, campaign: MetricsRegistry, process_lives: int) -> str:
        """The ``/metrics`` body for the current combined state."""
        combined, lives = self.scrape_state(campaign, process_lives)
        return render_prometheus_registry(combined, lives)
