"""The campaign driver thread.

One thread owns the campaign: it drives the existing
:meth:`Study.run <repro.core.study.Study.run>` loop (sequential or
through the supervised parallel engine — the driver does not care)
against the study's already-attached run store, and uses the
drive-by-day hook to publish each finished day to the
:class:`~repro.serve.access.StoreView` the HTTP threads read.

The hook is also the drain point: when a stop is requested (SIGTERM,
or :meth:`ServeDaemon.shutdown <repro.serve.daemon.ServeDaemon.shutdown>`),
the driver raises :class:`DrainRequested` out of the hook *after* the
current day's record landed, so the campaign stops exactly at a day
boundary — the store is left in the same state a kill-and-resume
chaos cycle proves resumable — and ``Study.run``'s own cleanup closes
any worker pool on the way out.
"""

from __future__ import annotations

import logging
import threading
import traceback
from typing import Any, Dict, Optional

from repro.serve.access import StoreView
from repro.telemetry import MetricsRegistry

__all__ = ["CampaignDriver", "DrainRequested"]

logger = logging.getLogger(__name__)


class DrainRequested(Exception):
    """Raised out of the day hook to stop the campaign at a boundary."""


class CampaignDriver(threading.Thread):
    """Advances a campaign day by day, publishing each finished day."""

    #: Lifecycle phases, in order of appearance.
    PHASES = ("starting", "running", "draining", "drained", "complete", "failed")

    def __init__(
        self,
        study,
        view: StoreView,
        *,
        day_delay_s: float = 0.0,
        run_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(name="repro-serve-driver", daemon=True)
        self._study = study
        self._view = view
        self._day_delay_s = float(day_delay_s)
        self._run_kwargs = dict(run_kwargs or {})
        self.stop_event = threading.Event()
        #: Set once the driver will never publish another day.
        self.finished = threading.Event()
        self._lock = threading.Lock()
        self._phase = "starting"
        self._error: Optional[str] = None

    # -- state -------------------------------------------------------------

    @property
    def phase(self) -> str:
        with self._lock:
            if self._phase == "running" and self.stop_event.is_set():
                return "draining"
            return self._phase

    @property
    def error(self) -> Optional[str]:
        with self._lock:
            return self._error

    def _set_phase(self, phase: str, error: Optional[str] = None) -> None:
        with self._lock:
            self._phase = phase
            self._error = error

    def request_stop(self) -> None:
        """Ask the campaign to drain at the next day boundary."""
        self.stop_event.set()

    def scenario(self) -> Dict[str, Any]:
        """The campaign's scenario identity, as the manifest records it."""
        from repro.checkpoint.store import _scenario_block

        return _scenario_block(self._study.config)

    # -- thread body -------------------------------------------------------

    def run(self) -> None:
        self._set_phase("running")
        try:
            self._study.run(day_hook=self._after_day, **self._run_kwargs)
        except DrainRequested:
            self._set_phase("drained")
            logger.info(
                "campaign drained at day boundary %d",
                self._study._next_day - 1,
            )
        except Exception as exc:  # the daemon keeps serving a failure
            self._set_phase("failed", f"{type(exc).__name__}: {exc}")
            logger.error(
                "campaign driver failed:\n%s", traceback.format_exc()
            )
        else:
            self._set_phase("complete")
            logger.info("campaign complete; continuing to serve")
        finally:
            self.finished.set()

    def _after_day(self, day: int) -> None:
        """The drive-by-day hook: publish, pace, honour drains."""
        store = self._study.store
        if store is not None:
            self._view.publish_day(day, store.day_entry(day))
        self.publish_metrics()
        # One wait covers both pacing and drain: a day delay of 0
        # still observes a pending stop immediately.
        if self.stop_event.wait(self._day_delay_s) or self.stop_event.is_set():
            raise DrainRequested(f"drain requested at day {day}")

    def publish_metrics(self) -> None:
        """Publish a fresh campaign-telemetry snapshot to the view.

        Runs on the driver thread (the registry's single writer), so
        copying via merge is race-free; also called once by the
        daemon before any thread starts.
        """
        telemetry = self._study.telemetry
        snapshot = MetricsRegistry()
        snapshot.merge(telemetry.metrics)
        self._view.publish_metrics(snapshot, telemetry.process_lives)
