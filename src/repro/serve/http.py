"""The HTTP request layer: routes, caching, and error mapping.

A :class:`ServeHTTPServer` is a stdlib ``ThreadingHTTPServer`` wired
to the daemon's shared state — the :class:`~repro.serve.access.StoreView`,
the :class:`~repro.serve.cache.ResponseCache`, the serve metrics
registry, and the campaign driver.  Each request runs on its own
thread; everything a handler touches is either immutable, published
under the view's lock, or lock-guarded.

Routes::

    GET /v1/status            campaign phase, published days, cache stats
    GET /v1/days              published day index (digest, bytes, kind)
    GET /v1/day/{n}           decoded day slice; ?platform= ?limit= ?group=
    GET /v1/health            collection-health report (latest day)
    GET /v1/report            dataset summary + Table 2 + health (latest
                              day); ?source=streaming folds the store's
                              day slices instead of decoding an anchor
    GET /metrics              Prometheus text (campaign + serve registries)

``/v1/day``, ``/v1/health`` and ``/v1/report`` are fronted by the
content-digest-keyed response cache; the ``X-Cache: HIT|MISS`` header
reports the outcome per response.  Error mapping is uniform: unknown
or unpublished days raise :class:`~repro.errors.CheckpointError` and
map to 404, invalid query parameters map to 400, a transient store
read failure under an already-published day (a reader racing a
write) maps to 503 with a ``Retry-After`` header, and anything
unexpected maps to 500 with a ``serve_errors_total`` count — never a
raw traceback in the body.
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import CheckpointError
from repro.serve.cache import CachedResponse, cache_key
from repro.serve.views import (
    day_slice,
    health_body,
    report_body,
    streaming_report_body,
)

__all__ = ["ServeHTTPServer", "ServeRequestHandler"]

logger = logging.getLogger(__name__)

_JSON = "application/json; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"
#: Prometheus exposition format 0.0.4 content type.
_PROM = "text/plain; version=0.0.4; charset=utf-8"

_PLATFORMS = ("whatsapp", "telegram", "discord")


class _BadRequest(Exception):
    """Invalid query parameters; maps to HTTP 400."""


class _TransientStore(Exception):
    """A store read failed under a published day; maps to HTTP 503.

    A day is only published after its record is durably on disk, so a
    :class:`~repro.errors.CheckpointError` out of the *record read*
    (as opposed to the entry lookup, whose failure means "no such
    day") is transient — a reader racing a concurrent write or a
    momentarily contended file.  The client is told to retry, not
    shown a 500.
    """

    retry_after_s = 1


def _json_body(obj: Any) -> bytes:
    return (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode("utf-8")


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the daemon's shared state."""

    # One thread per request; server_close() joins in-flight handlers,
    # which is exactly the drain semantics SIGTERM needs.
    daemon_threads = True
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, view, cache, serve_metrics, driver) -> None:
        super().__init__(address, ServeRequestHandler)
        self.view = view
        self.cache = cache
        self.serve_metrics = serve_metrics
        self.driver = driver
        self.started_at = time.monotonic()


class ServeRequestHandler(BaseHTTPRequestHandler):
    """Route dispatch for one request thread."""

    # No keep-alive: every response closes its connection, so a drain
    # never waits on an idle client socket.
    protocol_version = "HTTP/1.0"
    server: ServeHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send(
        self,
        status: int,
        content_type: str,
        body: bytes,
        x_cache: Optional[str] = None,
        retry_after: Optional[int] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if x_cache is not None:
            self.send_header("X-Cache", x_cache)
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        self._send(
            status, _JSON, _json_body({"error": message}),
            retry_after=retry_after,
        )

    # -- dispatch ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        try:
            params = dict(parse_qsl(split.query, keep_blank_values=True))
        except ValueError:
            self._send_error_json(400, "malformed query string")
            return

        started = time.monotonic()
        endpoint: Optional[str] = None
        try:
            if path == "/metrics":
                # Deliberately not counted: quiesced scrapes must be
                # byte-identical, so the scrape cannot observe itself.
                self._handle_metrics()
                return
            if path == "/v1/status":
                endpoint = "status"
                self._handle_status()
            elif path == "/v1/days":
                endpoint = "days"
                self._handle_days()
            elif path.startswith("/v1/day/"):
                endpoint = "day"
                self._handle_day(path[len("/v1/day/"):], params)
            elif path == "/v1/health":
                endpoint = "health"
                self._handle_health()
            elif path == "/v1/report":
                endpoint = "report"
                self._handle_report(params)
            else:
                endpoint = "unknown"
                self._send_error_json(404, f"no such endpoint: {path}")
        except _BadRequest as exc:
            self.server.serve_metrics.count(
                "serve_errors_total", status="400"
            )
            self._send_error_json(400, str(exc))
        except CheckpointError as exc:
            self.server.serve_metrics.count(
                "serve_errors_total", status="404"
            )
            self._send_error_json(404, str(exc))
        except _TransientStore as exc:
            self.server.serve_metrics.count(
                "serve_errors_total", status="503"
            )
            self._send_error_json(
                503, str(exc), retry_after=_TransientStore.retry_after_s
            )
        except BrokenPipeError:
            pass  # client went away mid-write; nothing to send
        except Exception as exc:
            logger.exception("unhandled error serving %s", self.path)
            self.server.serve_metrics.count(
                "serve_errors_total", status="500"
            )
            try:
                self._send_error_json(
                    500, f"internal error: {type(exc).__name__}"
                )
            except OSError:
                pass
        finally:
            if endpoint is not None:
                metrics = self.server.serve_metrics
                metrics.count("serve_requests_total", endpoint=endpoint)
                metrics.observe(
                    "serve_request_seconds", time.monotonic() - started
                )

    # -- cache helper ------------------------------------------------------

    def _respond_cached(
        self,
        endpoint: str,
        digest: str,
        params: Dict[str, str],
        build: Callable[[], CachedResponse],
    ) -> None:
        """Serve from the response cache, building+storing on a miss.

        Two threads racing the same key may both build; both results
        are identical (pure function of digest + params), so the
        second put is harmless.
        """
        key = cache_key(endpoint, digest, params)
        cached = self.server.cache.get(key)
        if cached is not None:
            status, content_type, body = cached
            self._send(status, content_type, body, x_cache="HIT")
            return
        status, content_type, body = build()
        self.server.cache.put(key, (status, content_type, body))
        self._send(status, content_type, body, x_cache="MISS")

    @staticmethod
    def _read_published(read: Callable[[], Dict[str, Any]]):
        """Run a record read under a *published* day; 503 on failure.

        The entry lookup already proved the day exists, so a
        CheckpointError out of the actual store read is transient
        (a reader racing a write) — mapped to 503 + ``Retry-After``
        by :class:`_TransientStore`, never a 404 or a 500.
        """
        try:
            return read()
        except CheckpointError as exc:
            raise _TransientStore(
                f"published day record momentarily unreadable, "
                f"retry shortly: {exc}"
            )

    def _latest_entry(self) -> Tuple[int, Dict[str, Any]]:
        """The latest published day and its entry; 404 before day 0."""
        view = self.server.view
        latest = view.latest_day()
        if latest is None:
            raise CheckpointError(
                "no day has been published yet (campaign is on day 0)"
            )
        return latest, view.entry(latest)

    # -- routes ------------------------------------------------------------

    def _handle_status(self) -> None:
        view = self.server.view
        driver = self.server.driver
        body = {
            "phase": driver.phase,
            "error": driver.error,
            "scenario": driver.scenario(),
            "latest_day": view.latest_day(),
            "published_days": len(view.days()),
            "store": view.directory,
            "uptime_s": round(
                time.monotonic() - self.server.started_at, 3
            ),
            "response_cache": self.server.cache.stats(),
            "read_cache": view.read_cache_stats(),
        }
        self._send(200, _JSON, _json_body(body))

    def _handle_days(self) -> None:
        view = self.server.view
        entries = view.entries()
        body = {
            "days": [
                {
                    "day": day,
                    "digest": entries[day]["digest"],
                    "bytes": entries[day]["bytes"],
                    "kind": entries[day]["kind"],
                }
                for day in sorted(entries)
            ],
            "latest_day": view.latest_day(),
        }
        self._send(200, _JSON, _json_body(body))

    def _handle_day(self, tail: str, raw: Dict[str, str]) -> None:
        try:
            day = int(tail)
        except ValueError:
            raise _BadRequest(f"day must be an integer, got {tail!r}")
        if day < 0:
            raise _BadRequest(f"day must be >= 0, got {day}")
        params = self._day_params(raw)

        view = self.server.view
        entry = view.entry(day)

        def build() -> CachedResponse:
            record = self._read_published(lambda: view.record(day))
            if record["kind"] != "anchor":
                body = {
                    "day": day,
                    "kind": "replay",
                    "anchor_day": record["anchor_day"],
                    "hint": (
                        "this day is a replay marker; query its anchor "
                        "day, or run serve with --checkpoint-every 1"
                    ),
                }
                return 200, _JSON, _json_body(body)
            body = day_slice(
                record["study"],
                day,
                platform=params.get("platform"),
                limit=(
                    int(params["limit"]) if "limit" in params else None
                ),
                group=params.get("group"),
            )
            return 200, _JSON, _json_body(body)

        self._respond_cached("day", entry["digest"], params, build)

    @staticmethod
    def _day_params(raw: Dict[str, str]) -> Dict[str, str]:
        """Validate /v1/day query params; _BadRequest on anything off."""
        params: Dict[str, str] = {}
        unknown = sorted(set(raw) - {"platform", "limit", "group"})
        if unknown:
            raise _BadRequest(f"unknown query parameters: {unknown}")
        if "platform" in raw:
            if raw["platform"] not in _PLATFORMS:
                raise _BadRequest(
                    f"platform must be one of {list(_PLATFORMS)}, "
                    f"got {raw['platform']!r}"
                )
            params["platform"] = raw["platform"]
        if "limit" in raw:
            try:
                limit = int(raw["limit"])
            except ValueError:
                raise _BadRequest(
                    f"limit must be an integer, got {raw['limit']!r}"
                )
            if limit < 1:
                raise _BadRequest(f"limit must be >= 1, got {limit}")
            params["limit"] = str(limit)
        if "group" in raw:
            if not raw["group"]:
                raise _BadRequest("group must be non-empty")
            params["group"] = raw["group"]
        return params

    def _handle_health(self) -> None:
        view = self.server.view
        latest, entry = self._latest_entry()

        def build() -> CachedResponse:
            record = view.record(latest)
            if record["kind"] != "anchor":
                raise CheckpointError(
                    f"latest day {latest} is a replay marker; health "
                    "needs an anchor (run serve with --checkpoint-every 1)"
                )
            return 200, _TEXT, health_body(record["study"]).encode("utf-8")

        self._respond_cached("health", entry["digest"], {}, build)

    def _handle_report(self, raw: Dict[str, str]) -> None:
        view = self.server.view
        latest, entry = self._latest_entry()
        unknown = sorted(set(raw) - {"source"})
        if unknown:
            raise _BadRequest(f"unknown query parameters: {unknown}")
        source = raw.get("source", "batch")
        if source not in ("batch", "streaming"):
            raise _BadRequest(
                f"source must be 'batch' or 'streaming', got {source!r}"
            )
        params = {"source": source} if source != "batch" else {}

        def build() -> CachedResponse:
            if source == "streaming":
                body = self._build_streaming_report(latest)
            else:
                record = self._read_published(
                    lambda: view.record_fresh(latest)
                )
                if record["kind"] != "anchor":
                    raise CheckpointError(
                        f"latest day {latest} is a replay marker; the "
                        "report needs an anchor (run serve with "
                        "--checkpoint-every 1)"
                    )
                body = report_body(record["study"], latest)
            return 200, _TEXT, body.encode("utf-8")

        self._respond_cached("report", entry["digest"], params, build)

    def _build_streaming_report(self, latest: int) -> str:
        """Fold the published slice prefix of the served store.

        Re-opens the store read-only: the on-disk manifest lands by
        atomic rename, so a fresh open is a consistent point-in-time
        snapshot and never races the driver's in-place manifest dict.
        A read failure under a published day is transient (503); a
        store that records no slices at all is a plain 404.
        """
        from repro.checkpoint import RunStore

        store = self._read_published(
            lambda: RunStore.open(self.server.view.directory)
        )
        if not store.slices_enabled:
            raise CheckpointError(
                "this store records no analysis slices; run serve "
                "with --slices to enable the streaming report"
            )
        return self._read_published(
            lambda: streaming_report_body(store, latest)
        )

    def _handle_metrics(self) -> None:
        campaign, lives = self.server.view.metrics_snapshot()
        body = self.server.serve_metrics.render(campaign, lives)
        self._send(200, _PROM, body.encode("utf-8"))
