"""repro.serve — the long-lived campaign daemon.

Turns the batch pipeline into a service: one
:class:`~repro.serve.driver.CampaignDriver` thread advances the
campaign through the existing study/checkpoint machinery while a
stdlib threading HTTP server concurrently answers status, day-slice,
health, report and Prometheus queries out of the run store, fronted
by a content-digest-keyed response cache.  ``repro serve`` is the CLI
entry point; :mod:`repro.serve.load` is the seeded load harness
behind ``repro serve-load``.
"""

from repro.serve.access import StoreView
from repro.serve.cache import ResponseCache, cache_key
from repro.serve.config import ServeConfig
from repro.serve.daemon import ServeDaemon
from repro.serve.driver import CampaignDriver, DrainRequested
from repro.serve.http import ServeHTTPServer
from repro.serve.load import LoadReport, run_load
from repro.serve.metrics import ServeMetrics

__all__ = [
    "CampaignDriver",
    "DrainRequested",
    "LoadReport",
    "ResponseCache",
    "ServeConfig",
    "ServeDaemon",
    "ServeHTTPServer",
    "ServeMetrics",
    "StoreView",
    "cache_key",
    "run_load",
]
