"""Reader/writer-safe access to a live campaign's run store.

The driver thread writes day records through the study's
:class:`~repro.checkpoint.RunStore` while HTTP threads answer queries
against the same store.  Object files are safe by construction — they
are content-addressed and land via atomic rename, so a reader can
never observe a torn object — but the manifest dict is mutated in
place by the writer, and the decision "which days exist right now"
must not be read from under it.

:class:`StoreView` closes that gap with a published-day protocol:
after a day's record is durably on disk, the driver *publishes* the
day (its manifest entry — digest, payload size, record kind — copied
under the view's lock).  Readers only ever see published days and read
payloads content-addressed by digest via
:meth:`~repro.checkpoint.RunStore.read_object`, never through the
manifest — so an in-progress day is invisible until it is complete,
torn reads are structurally impossible, and no reader ever blocks the
campaign for longer than a dict copy.

The view also carries the published campaign-telemetry snapshot (the
``/metrics`` source) and a tiny LRU of decoded anchor records, since
several endpoints (day slices, health, report) decode the same anchor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.checkpoint import RunStore, decode_day_record
from repro.errors import CheckpointError
from repro.telemetry import MetricsRegistry

__all__ = ["StoreView"]

#: Decoded anchors kept hot.  An anchor unpickles to a full Study
#: object graph, so this stays tiny: the latest day (status/health/
#: report) plus one historical day a client is paging through.
_DECODED_ENTRIES = 2


class StoreView:
    """The HTTP layer's read-only window onto a live run store."""

    def __init__(self, store: RunStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        #: day -> {"digest", "bytes", "kind"}, published days only.
        self._entries: Dict[int, Dict[str, Any]] = {}
        self._latest: Optional[int] = None
        self._metrics = MetricsRegistry()
        self._process_lives = 1
        self._decode_lock = threading.Lock()
        self._decoded: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    @property
    def directory(self) -> str:
        return str(self._store.directory)

    # -- writer side (driver thread) --------------------------------------

    def publish_day(self, day: int, entry: Dict[str, Any]) -> None:
        """Make day ``day`` visible to readers (record is on disk)."""
        entry = {
            "digest": entry["digest"],
            "bytes": int(entry.get("bytes", 0)),
            "kind": str(entry.get("kind", "anchor")),
        }
        with self._lock:
            self._entries[day] = entry
            if self._latest is None or day > self._latest:
                self._latest = day

    def publish_existing(self) -> None:
        """Publish every day already in the store (resume startup).

        Called before any reader or writer thread starts, so reading
        the manifest directly is safe here.
        """
        for day in self._store.days():
            self.publish_day(day, self._store.day_entry(day))

    def publish_metrics(
        self, snapshot: MetricsRegistry, process_lives: int
    ) -> None:
        """Swap in a fresh campaign-telemetry snapshot.

        ``snapshot`` must be a private copy (the driver builds one
        with ``MetricsRegistry().merge(...)``); the view hands it out
        by reference and never mutates it.
        """
        with self._lock:
            self._metrics = snapshot
            self._process_lives = int(process_lives)

    # -- reader side (HTTP threads) ----------------------------------------

    def days(self) -> List[int]:
        """Published day indices, ascending."""
        with self._lock:
            return sorted(self._entries)

    def latest_day(self) -> Optional[int]:
        """The most recent published day (None before the first)."""
        with self._lock:
            return self._latest

    def entry(self, day: int) -> Dict[str, Any]:
        """The published entry for ``day``; CheckpointError if unpublished."""
        with self._lock:
            entry = self._entries.get(day)
            latest = self._latest
        if entry is None:
            have = (
                f"published days 0..{latest}"
                if latest is not None
                else "no published days yet"
            )
            raise CheckpointError(
                f"day {day} is not published ({have})"
            )
        return dict(entry)

    def entries(self) -> Dict[int, Dict[str, Any]]:
        """All published entries, as a point-in-time copy."""
        with self._lock:
            return {day: dict(e) for day, e in self._entries.items()}

    def metrics_snapshot(self):
        """The latest (registry snapshot, process lives) pair."""
        with self._lock:
            return self._metrics, self._process_lives

    def read_day(self, day: int) -> bytes:
        """The payload of a *published* day, content-addressed."""
        entry = self.entry(day)
        return self._store.read_object(entry["digest"], kind=entry["kind"])

    def record(self, day: int) -> Dict[str, Any]:
        """The decoded day record (anchor study or replay marker).

        Decoded anchors are cached by digest in a small LRU: the
        digest is content-addressed, so a cached decode can never go
        stale.  Each cached study is a private unpickled object graph
        — mutating it (e.g. collecting a report from its joiner)
        cannot touch the live campaign — but it is *shared across
        requests*, so view builders must treat it as read-mostly.
        """
        entry = self.entry(day)
        digest = entry["digest"]
        with self._decode_lock:
            record = self._decoded.get(digest)
            if record is not None:
                self._decoded.move_to_end(digest)
                return record
        payload = self._store.read_object(digest, kind=entry["kind"])
        record = decode_day_record(payload)
        with self._decode_lock:
            self._decoded[digest] = record
            self._decoded.move_to_end(digest)
            while len(self._decoded) > _DECODED_ENTRIES:
                self._decoded.popitem(last=False)
        return record

    def record_fresh(self, day: int) -> Dict[str, Any]:
        """Decode a *private* copy of day ``day``'s record.

        Bypasses the decode LRU: builders that mutate the decoded
        graph (the report endpoint collects messages through the
        decoded joiner's handles) get their own unpickle, so the
        shared cached decode stays read-only.  The byte payload still
        comes through the store's decompress cache.
        """
        entry = self.entry(day)
        payload = self._store.read_object(entry["digest"], kind=entry["kind"])
        return decode_day_record(payload)

    def read_cache_stats(self) -> Dict[str, int]:
        """Pass-through to the store's decompress-cache stats."""
        return self._store.read_cache_stats()
