"""Serve-mode configuration.

:class:`ServeConfig` bundles the runtime knobs of the campaign daemon
(:mod:`repro.serve.daemon`).  Like the worker count, none of these are
part of the campaign's identity: they live outside
:class:`~repro.core.study.StudyConfig` and the store's config digest,
so any serve configuration may drive (or resume) any store, and
serving a campaign can never change a single artefact byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_READ_CACHE_ENTRIES",
    "ServeConfig",
]

#: Default bound on the HTTP response cache (rendered bodies).
DEFAULT_CACHE_ENTRIES = 128

#: Default bound on the store's decompress cache (day payloads) while
#: serving.  Day payloads are the big objects (an anchor is a full
#: campaign pickle), so this stays small.
DEFAULT_READ_CACHE_ENTRIES = 8


@dataclass(frozen=True)
class ServeConfig:
    """Runtime configuration of one ``repro serve`` daemon.

    Attributes:
        host: Interface to bind (default loopback).
        port: TCP port; 0 (the default) binds an ephemeral port —
            read the bound address back from
            :attr:`~repro.serve.daemon.ServeDaemon.address` or the
            CLI's ``--port-file``.
        cache_entries: Bound on the response cache (rendered HTTP
            bodies keyed by day-record digest + query params).
        read_cache_entries: Bound on the store's decompress cache
            (:meth:`~repro.checkpoint.RunStore.enable_read_cache`);
            0 leaves it disabled.
        day_delay_s: Pause between simulated days, so a campaign
            advances in paced "real time" instead of as fast as the
            hardware allows.  0 (the default) runs flat out.
        linger: Keep serving after the campaign completes (until
            SIGTERM); False exits as soon as the driver finishes.
    """

    host: str = "127.0.0.1"
    port: int = 0
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    read_cache_entries: int = DEFAULT_READ_CACHE_ENTRIES
    day_delay_s: float = 0.0
    linger: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.cache_entries < 1:
            raise ConfigError(
                f"cache_entries must be >= 1, got {self.cache_entries}"
            )
        if self.read_cache_entries < 0:
            raise ConfigError(
                "read_cache_entries must be >= 0 (0 disables), got "
                f"{self.read_cache_entries}"
            )
        if self.day_delay_s < 0:
            raise ConfigError(
                f"day_delay_s must be >= 0, got {self.day_delay_s}"
            )
