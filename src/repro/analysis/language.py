"""Tweet-language distribution (Fig 4).

The paper reads the language field Twitter's API attaches to every
tweet; so does this analysis.  English dominates on every platform
(26 / 35 / 47 %), with platform-specific runners-up: Spanish and
Portuguese on WhatsApp, Arabic and Turkish on Telegram, and — notably —
Japanese at 27 % on Discord.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.dataset import StudyDataset
from repro.twitter.model import Tweet

__all__ = ["LanguageShares", "language_shares", "control_language_shares"]


@dataclass(frozen=True)
class LanguageShares:
    """Language mix of one tweet source, most common first.

    Attributes:
        source: Platform name or ``"control"``.
        n_tweets: Tweets analysed.
        shares: (language, fraction) pairs, descending.
    """

    source: str
    n_tweets: int
    shares: Tuple[Tuple[str, float], ...]

    def share(self, lang: str) -> float:
        """The fraction of tweets in ``lang`` (0.0 if absent)."""
        for language, frac in self.shares:
            if language == lang:
                return frac
        return 0.0

    @property
    def top(self) -> str:
        """The most common language."""
        return self.shares[0][0]


def _shares(source: str, tweets: Sequence[Tweet]) -> LanguageShares:
    if not tweets:
        raise ValueError(f"no tweets to analyse for source {source!r}")
    counts = Counter(tweet.lang for tweet in tweets)
    n = len(tweets)
    # Canonical tie-break (count desc, then language code) so the
    # ordering is a function of the counts alone — the streaming fold
    # reconstructs it from JSON aggregates, where insertion order is
    # not preserved.
    ordered = tuple(
        (lang, count / n)
        for lang, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    )
    return LanguageShares(source=source, n_tweets=n, shares=ordered)


def language_shares(dataset: StudyDataset, platform: str) -> LanguageShares:
    """Fig 4 language mix for one platform's group-sharing tweets."""
    return _shares(platform, dataset.tweets_for(platform))


def control_language_shares(dataset: StudyDataset) -> LanguageShares:
    """Language mix of the control dataset."""
    return _shares("control", dataset.control_tweets)
