"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

The paper extracts ten topics per platform from the English tweets
with LDA [Blei et al. 2003].  This is a from-scratch implementation —
no external topic-modeling dependency — using the standard collapsed
Gibbs sampler: topic assignments z are resampled token by token from

    p(z = k | rest) ∝ (n_dk + alpha) * (n_kw + beta) / (n_k + V*beta)

The inner loop is deliberately plain Python over small arrays: for the
corpus sizes the benches use (10^4-10^5 tokens) this converges in
seconds and stays dependency-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["LDAResult", "fit_lda", "fit_lda_minibatch"]


@dataclass
class LDAResult:
    """A fitted LDA model.

    Attributes:
        vocab: Index -> word.
        topic_word: (k, V) topic-word count matrix.
        doc_topic: (D, k) document-topic count matrix.
        alpha: Document-topic smoothing used.
        beta: Topic-word smoothing used.
    """

    vocab: List[str]
    topic_word: np.ndarray
    doc_topic: np.ndarray
    alpha: float
    beta: float

    @property
    def n_topics(self) -> int:
        """Number of topics k."""
        return self.topic_word.shape[0]

    def top_terms(self, topic: int, n: int = 10) -> List[str]:
        """The ``n`` most probable words of ``topic``."""
        order = np.argsort(self.topic_word[topic])[::-1][:n]
        return [self.vocab[i] for i in order]

    def dominant_topics(self) -> np.ndarray:
        """Per-document argmax topic (the paper's per-tweet topic match)."""
        return np.argmax(self.doc_topic, axis=1)

    def topic_doc_shares(self) -> np.ndarray:
        """Fraction of documents whose dominant topic is each topic."""
        dominant = self.dominant_topics()
        counts = np.bincount(dominant, minlength=self.n_topics)
        total = max(len(dominant), 1)
        return counts / total

    def topic_word_dist(self, topic: int) -> np.ndarray:
        """The smoothed word distribution of one topic."""
        counts = self.topic_word[topic] + self.beta
        return counts / counts.sum()


def fit_lda(
    docs: Sequence[Sequence[str]],
    n_topics: int = 10,
    n_iter: int = 50,
    alpha: float = 0.1,
    beta: float = 0.01,
    seed: int = 0,
) -> LDAResult:
    """Fit LDA with collapsed Gibbs sampling.

    Args:
        docs: Tokenised documents (already stop-word filtered).
        n_topics: Number of topics k (the paper uses 10).
        n_iter: Gibbs sweeps over the corpus.
        alpha: Symmetric document-topic Dirichlet prior.
        beta: Symmetric topic-word Dirichlet prior.
        seed: RNG seed; fits are deterministic given (docs, seed).

    Returns:
        The fitted :class:`LDAResult`.  Empty documents are allowed and
        simply contribute nothing.
    """
    if n_topics < 1:
        raise ValueError(f"n_topics must be >= 1, got {n_topics}")
    if n_iter < 1:
        raise ValueError(f"n_iter must be >= 1, got {n_iter}")

    word_index: Dict[str, int] = {}
    corpus: List[List[int]] = []
    for doc in docs:
        encoded = []
        for word in doc:
            idx = word_index.get(word)
            if idx is None:
                idx = len(word_index)
                word_index[word] = idx
            encoded.append(idx)
        corpus.append(encoded)

    n_docs = len(corpus)
    n_words = len(word_index)
    vocab = [""] * n_words
    for word, idx in word_index.items():
        vocab[idx] = word

    doc_topic = np.zeros((n_docs, n_topics), dtype=np.int64)
    topic_word = np.zeros((n_topics, max(n_words, 1)), dtype=np.int64)
    topic_totals = np.zeros(n_topics, dtype=np.int64)

    rng = random.Random(seed)
    assignments: List[List[int]] = []
    for d, doc in enumerate(corpus):
        doc_assign = []
        for w in doc:
            z = rng.randrange(n_topics)
            doc_assign.append(z)
            doc_topic[d, z] += 1
            topic_word[z, w] += 1
            topic_totals[z] += 1
        assignments.append(doc_assign)

    if n_words == 0:
        return LDAResult(vocab, topic_word, doc_topic, alpha, beta)

    # Plain-python views of the hot counters (faster than numpy scalars
    # in the per-token loop).
    dt = doc_topic.tolist()
    tw = topic_word.tolist()
    tt = topic_totals.tolist()
    v_beta = n_words * beta
    rand = rng.random

    for _ in range(n_iter):
        for d, doc in enumerate(corpus):
            doc_counts = dt[d]
            doc_assign = assignments[d]
            for i, w in enumerate(doc):
                z = doc_assign[i]
                doc_counts[z] -= 1
                tw[z][w] -= 1
                tt[z] -= 1

                total = 0.0
                weights = [0.0] * n_topics
                for k in range(n_topics):
                    p = (doc_counts[k] + alpha) * (tw[k][w] + beta) / (
                        tt[k] + v_beta
                    )
                    total += p
                    weights[k] = total
                target = rand() * total
                z_new = 0
                while weights[z_new] < target:
                    z_new += 1

                doc_assign[i] = z_new
                doc_counts[z_new] += 1
                tw[z_new][w] += 1
                tt[z_new] += 1

    return LDAResult(
        vocab=vocab,
        topic_word=np.asarray(tw, dtype=np.int64),
        doc_topic=np.asarray(dt, dtype=np.int64),
        alpha=alpha,
        beta=beta,
    )


def fit_lda_minibatch(
    docs: Iterable[Sequence[str]],
    n_topics: int = 10,
    n_iter: int = 50,
    alpha: float = 0.1,
    beta: float = 0.01,
    seed: int = 0,
    batch_docs: int = 4096,
) -> LDAResult:
    """Fit LDA in sequential document mini-batches.

    Memory holds one batch of token assignments at a time instead of
    the whole corpus: each batch is encoded, initialised, and Gibbs
    sampled against the topic-word counts *carried over* from earlier
    batches (a streaming variant of collapsed Gibbs), then its
    per-token assignments are freed.  What persists is bounded by the
    vocabulary and the document count — (k, V) topic-word counts and
    (D, k) document-topic rows — not by the token count.

    When every document fits in one batch the computation reduces to
    :func:`fit_lda` exactly (same RNG call sequence), so results are
    identical below the batch size; with several batches the fit is a
    deterministic approximation in which earlier documents are not
    resampled against later vocabulary.

    Args:
        docs: Tokenised documents; any iterable (may be a generator —
            it is consumed once).
        n_topics / n_iter / alpha / beta / seed: As :func:`fit_lda`;
            ``n_iter`` sweeps run over each batch.
        batch_docs: Documents per mini-batch.

    Returns:
        The fitted :class:`LDAResult` covering every document.
    """
    if n_topics < 1:
        raise ValueError(f"n_topics must be >= 1, got {n_topics}")
    if n_iter < 1:
        raise ValueError(f"n_iter must be >= 1, got {n_iter}")
    if batch_docs < 1:
        raise ValueError(f"batch_docs must be >= 1, got {batch_docs}")

    word_index: Dict[str, int] = {}
    tw: List[List[int]] = [[] for _ in range(n_topics)]
    tt = [0] * n_topics
    doc_topic_rows: List[List[int]] = []
    rng = random.Random(seed)

    def run_batch(batch: List[Sequence[str]]) -> None:
        corpus: List[List[int]] = []
        for doc in batch:
            encoded = []
            for word in doc:
                idx = word_index.get(word)
                if idx is None:
                    idx = len(word_index)
                    word_index[word] = idx
                encoded.append(idx)
            corpus.append(encoded)

        n_words = len(word_index)
        for row in tw:
            row.extend([0] * (n_words - len(row)))

        batch_dt = [[0] * n_topics for _ in corpus]
        assignments: List[List[int]] = []
        for d, doc in enumerate(corpus):
            doc_assign = []
            for w in doc:
                z = rng.randrange(n_topics)
                doc_assign.append(z)
                batch_dt[d][z] += 1
                tw[z][w] += 1
                tt[z] += 1
            assignments.append(doc_assign)

        if n_words:
            v_beta = n_words * beta
            rand = rng.random
            for _ in range(n_iter):
                for d, doc in enumerate(corpus):
                    doc_counts = batch_dt[d]
                    doc_assign = assignments[d]
                    for i, w in enumerate(doc):
                        z = doc_assign[i]
                        doc_counts[z] -= 1
                        tw[z][w] -= 1
                        tt[z] -= 1

                        total = 0.0
                        weights = [0.0] * n_topics
                        for k in range(n_topics):
                            p = (
                                (doc_counts[k] + alpha)
                                * (tw[k][w] + beta)
                                / (tt[k] + v_beta)
                            )
                            total += p
                            weights[k] = total
                        target = rand() * total
                        z_new = 0
                        while weights[z_new] < target:
                            z_new += 1

                        doc_assign[i] = z_new
                        doc_counts[z_new] += 1
                        tw[z_new][w] += 1
                        tt[z_new] += 1

        doc_topic_rows.extend(batch_dt)

    buffer: List[Sequence[str]] = []
    for doc in docs:
        buffer.append(doc)
        if len(buffer) >= batch_docs:
            run_batch(buffer)
            buffer = []
    if buffer:
        run_batch(buffer)

    n_words = len(word_index)
    vocab = [""] * n_words
    for word, idx in word_index.items():
        vocab[idx] = word
    topic_word = np.zeros((n_topics, max(n_words, 1)), dtype=np.int64)
    for k, row in enumerate(tw):
        if row:
            topic_word[k, : len(row)] = row
    doc_topic = (
        np.asarray(doc_topic_rows, dtype=np.int64)
        if doc_topic_rows
        else np.zeros((0, n_topics), dtype=np.int64)
    )
    return LDAResult(
        vocab=vocab,
        topic_word=topic_word,
        doc_topic=doc_topic,
        alpha=alpha,
        beta=beta,
    )
