"""Group membership: sizes, online members, growth, creators, countries.

Covers Fig 7 plus the Section 5 prose analyses:

* sizes and online-member fractions from each group's *first* daily
  snapshot;
* growth as the member-count difference between the first and last
  observation;
* creator multiplicity — WhatsApp creators are identified by the
  hashed phone number the landing page leaks, Discord creators by the
  API-visible creator id, Telegram creators only for joined groups;
* WhatsApp group countries from the creators' dialing codes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import ECDF, ecdf
from repro.core.dataset import StudyDataset
from repro.privacy.phone import country_of_dialing_code

__all__ = [
    "MembershipResult",
    "CreatorStats",
    "growth_stats",
    "membership",
    "creator_stats",
    "whatsapp_countries",
]


@dataclass(frozen=True)
class MembershipResult:
    """Fig 7 statistics for one platform.

    Attributes:
        platform: Messaging platform.
        size_cdf: ECDF of member counts at first observation (Fig 7a).
        online_frac_cdf: ECDF of online/total at first observation
            (Fig 7b; None for WhatsApp which exposes no online counts).
        growth_cdf: ECDF of (last - first) member counts (Fig 7c);
            empty when no group was observed twice.
        growing_frac / flat_frac / shrinking_frac: Trend shares over
            the real growth observations, or None when there are none —
            a campaign with no twice-observed group has no trend, not a
            100% flat one.
        at_cap_frac: Groups at the platform's member limit.
        max_growth: Largest observed member-count change (None when no
            growth was observed).
    """

    platform: str
    size_cdf: ECDF
    online_frac_cdf: Optional[ECDF]
    growth_cdf: ECDF
    growing_frac: Optional[float]
    flat_frac: Optional[float]
    shrinking_frac: Optional[float]
    at_cap_frac: float
    max_growth: Optional[float]


@dataclass(frozen=True)
class CreatorStats:
    """Section 5 "Group Creators" statistics for one platform."""

    platform: str
    n_groups: int
    n_creators: int
    single_group_frac: float
    multi_group_frac: float
    max_groups_per_creator: int


def membership(
    dataset: StudyDataset, platform: str, member_cap: Optional[int] = None
) -> MembershipResult:
    """Compute Fig 7 for one platform."""
    sizes: List[float] = []
    online_fracs: List[float] = []
    growths: List[float] = []
    for record in dataset.records_for(platform):
        # Missed snapshots (transient collection failures) carry no
        # sizes; they must not anchor first/last observations.
        snaps = [
            s
            for s in dataset.snapshots.get(record.canonical, [])
            if s.alive and not s.missed
        ]
        if not snaps:
            continue
        first, last = snaps[0], snaps[-1]
        if first.size is None:
            continue
        sizes.append(float(first.size))
        if first.online is not None and first.size > 0:
            online_fracs.append(first.online / first.size)
        # Growth needs at least two observations; single-snapshot groups
        # (e.g. instantly-expiring Discord invites) carry no signal.
        if len(snaps) >= 2 and last.size is not None:
            growths.append(float(last.size - first.size))
    if not sizes:
        raise ValueError(f"no alive snapshots for {platform}")
    size_arr = np.asarray(sizes)
    at_cap = (
        float(np.mean(size_arr >= member_cap)) if member_cap else 0.0
    )
    return MembershipResult(
        platform=platform,
        size_cdf=ecdf(size_arr),
        online_frac_cdf=ecdf(online_fracs) if online_fracs else None,
        **growth_stats(growths),
        at_cap_frac=at_cap,
    )


def growth_stats(growths: List[float]) -> Dict[str, object]:
    """Trend statistics over real growth observations only.

    With no twice-observed group there is no trend signal: every
    fraction is None and the growth CDF is empty, rather than the
    single fabricated zero observation (spurious ``flat_frac == 1.0``)
    this function's inline predecessor reported.  Shared by the batch
    and streaming membership paths so both report identically.
    """
    if not growths:
        return {
            "growth_cdf": ecdf([]),
            "growing_frac": None,
            "flat_frac": None,
            "shrinking_frac": None,
            "max_growth": None,
        }
    growth_arr = np.asarray(growths)
    return {
        "growth_cdf": ecdf(growth_arr),
        "growing_frac": float(np.mean(growth_arr > 0)),
        "flat_frac": float(np.mean(growth_arr == 0)),
        "shrinking_frac": float(np.mean(growth_arr < 0)),
        "max_growth": float(np.abs(growth_arr).max()),
    }


def _creator_keys(dataset: StudyDataset, platform: str) -> List[str]:
    """One creator identity per observable group."""
    keys: List[str] = []
    if platform == "telegram":
        for data in dataset.joined_for(platform):
            if data.creator_id:
                keys.append(data.creator_id)
        return keys
    for record in dataset.records_for(platform):
        for snap in dataset.snapshots.get(record.canonical, []):
            if not snap.alive:
                continue
            if platform == "whatsapp" and snap.creator_phone_hash is not None:
                keys.append(snap.creator_phone_hash.digest)
                break
            if platform == "discord" and snap.creator_id:
                keys.append(snap.creator_id)
                break
    return keys


def creator_stats(dataset: StudyDataset, platform: str) -> CreatorStats:
    """Section 5 creator-multiplicity statistics for one platform."""
    keys = _creator_keys(dataset, platform)
    if not keys:
        raise ValueError(f"no creator information for {platform}")
    counts = Counter(keys)
    per_creator = np.asarray(list(counts.values()))
    return CreatorStats(
        platform=platform,
        n_groups=len(keys),
        n_creators=len(counts),
        single_group_frac=float(np.mean(per_creator == 1)),
        multi_group_frac=float(np.mean(per_creator >= 2)),
        max_groups_per_creator=int(per_creator.max()),
    )


def whatsapp_countries(dataset: StudyDataset) -> List[Tuple[str, int]]:
    """WhatsApp groups per creator country, descending (Section 5)."""
    counter: Counter = Counter()
    for record in dataset.records_for("whatsapp"):
        for snap in dataset.snapshots.get(record.canonical, []):
            if snap.alive and snap.creator_dialing_code:
                country = country_of_dialing_code(snap.creator_dialing_code)
                counter[country or snap.creator_dialing_code] += 1
                break
    if not counter:
        raise ValueError("no WhatsApp creator country codes observed")
    return counter.most_common()
