"""In-group message analyses (Fig 8 and Fig 9, Section 5).

From the joined-group aggregates: the message-type mix (text dominates
everywhere; stickers are a WhatsApp speciality), per-group daily
volumes, per-user volumes, the activity concentration ("the top 1 % of
members posted 63 % of all Discord messages"), and the active-member
fractions.

Per-group daily *rates* are divided by the study's ``message_scale``
so they are comparable with the paper's absolute thresholds (">10
messages a day"); per-user counts are reported raw (thinning a user's
Poisson stream is equivalent to observing a proportionally quieter
user, which preserves the concentration shares the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.stats import ECDF, ecdf, share_of_top_fraction
from repro.core.dataset import StudyDataset
from repro.platforms.base import MessageType

__all__ = [
    "MessageTypeMix",
    "GroupActivity",
    "UserActivity",
    "message_types",
    "group_activity",
    "user_activity",
]


@dataclass(frozen=True)
class MessageTypeMix:
    """Fig 8: fraction of messages of each type for one platform."""

    platform: str
    n_messages: int
    fractions: Tuple[Tuple[MessageType, float], ...]

    def fraction(self, mtype: MessageType) -> float:
        """The share of one message type (0.0 if absent)."""
        for t, frac in self.fractions:
            if t is mtype:
                return frac
        return 0.0


@dataclass(frozen=True)
class GroupActivity:
    """Fig 9a: messages per day per group.

    Attributes:
        platform: Messaging platform.
        rate_cdf: ECDF of per-group mean messages/day (descaled).
        over_10_frac: Groups averaging more than 10 messages/day.
        max_rate: Busiest group's messages/day.
    """

    platform: str
    rate_cdf: ECDF
    over_10_frac: float
    max_rate: float


@dataclass(frozen=True)
class UserActivity:
    """Fig 9b: messages per posting user.

    Attributes:
        platform: Messaging platform.
        count_cdf: ECDF of per-user collected message counts.
        n_posters: Users who posted at least once.
        n_members_observed: Total member count across joined groups
            (None when the platform hid it everywhere).
        poster_frac: Posters / total members, where computable.
        top1pct_share: Share of messages from the top 1 % of posters.
        le_10_frac: Posters with at most 10 collected messages.
    """

    platform: str
    count_cdf: ECDF
    n_posters: int
    n_members_observed: Optional[int]
    poster_frac: Optional[float]
    top1pct_share: float
    le_10_frac: float


def message_types(dataset: StudyDataset, platform: str) -> MessageTypeMix:
    """Compute Fig 8 for one platform."""
    totals: Dict[MessageType, int] = {}
    for data in dataset.joined_for(platform):
        for mtype, count in data.type_counts.items():
            totals[mtype] = totals.get(mtype, 0) + count
    n = sum(totals.values())
    if n == 0:
        raise ValueError(f"no messages collected for {platform}")
    # Canonical tie-break (count desc, then type value) so the ordering
    # is a function of the counts alone — the streaming fold
    # reconstructs it from JSON aggregates, where insertion order is
    # not preserved.
    ordered = tuple(
        (mtype, count / n)
        for mtype, count in sorted(
            totals.items(), key=lambda item: (-item[1], item[0].value)
        )
    )
    return MessageTypeMix(platform=platform, n_messages=n, fractions=ordered)


def group_activity(dataset: StudyDataset, platform: str) -> GroupActivity:
    """Compute Fig 9a for one platform."""
    rates: List[float] = []
    for data in dataset.joined_for(platform):
        days = data.observation_days
        if days <= 0:
            rates.append(0.0)
            continue
        rates.append(data.n_messages / days / dataset.message_scale)
    if not rates:
        raise ValueError(f"no joined groups for {platform}")
    arr = np.asarray(rates)
    return GroupActivity(
        platform=platform,
        rate_cdf=ecdf(arr),
        over_10_frac=float(np.mean(arr > 10.0)),
        max_rate=float(arr.max()),
    )


def user_activity(dataset: StudyDataset, platform: str) -> UserActivity:
    """Compute Fig 9b for one platform."""
    per_user: Dict[str, int] = {}
    # poster_frac must compare like with like: only groups whose member
    # count is known contribute to the denominator, so only *their*
    # posters may count in the numerator — mixing in posters from
    # hidden-member-list groups can push the fraction past 1.0.
    known_posters: Set[str] = set()
    n_members = 0
    members_known = False
    for data in dataset.joined_for(platform):
        for sender, count in data.sender_counts.items():
            per_user[sender] = per_user.get(sender, 0) + count
        if data.size_at_join is not None:
            known_posters.update(data.sender_counts)
            n_members += data.size_at_join
            members_known = True
    if not per_user:
        raise ValueError(f"no posting users observed for {platform}")
    counts = np.asarray(list(per_user.values()), dtype=float)
    poster_frac = (
        len(known_posters) / n_members
        if members_known and n_members > 0
        else None
    )
    return UserActivity(
        platform=platform,
        count_cdf=ecdf(counts),
        n_posters=len(per_user),
        n_members_observed=n_members if members_known else None,
        poster_frac=poster_frac,
        top1pct_share=share_of_top_fraction(counts, 0.01),
        le_10_frac=float(np.mean(counts <= 10)),
    )
