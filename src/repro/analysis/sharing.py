"""Group-sharing dynamics on Twitter (Fig 1 and Fig 2, Section 4).

Fig 1 counts, per day and per platform: (a) all group-URL occurrences,
(b) distinct URLs shared that day, (c) URLs never seen before that day.
Fig 2 is the CDF of how many tweets share each URL over the whole
window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import ECDF, ecdf
from repro.core.dataset import StudyDataset
from repro.text.tokenize import tokenize_for_lda

__all__ = [
    "DailyDiscovery",
    "ShareDistribution",
    "TopSharedURL",
    "daily_discovery",
    "tweets_per_url",
    "top_shared_urls",
]

PLATFORMS = ("whatsapp", "telegram", "discord")


@dataclass(frozen=True)
class DailyDiscovery:
    """Per-day discovery series for one platform (Fig 1).

    Attributes:
        platform: Messaging platform.
        days: Day indices 0..n_days-1.
        all_counts: Group-URL occurrences (tweets) per day.
        unique_counts: Distinct URLs shared per day.
        new_counts: First-ever-seen URLs per day.
    """

    platform: str
    days: List[int]
    all_counts: List[int]
    unique_counts: List[int]
    new_counts: List[int]

    @property
    def median_all(self) -> float:
        """Median of the per-day occurrence counts."""
        return float(np.median(self.all_counts))

    @property
    def median_unique(self) -> float:
        """Median of the per-day distinct-URL counts."""
        return float(np.median(self.unique_counts))

    @property
    def median_new(self) -> float:
        """Median of the per-day new-URL counts (the paper's headline
        1111 / 1817 / 5664 figures)."""
        return float(np.median(self.new_counts))


@dataclass(frozen=True)
class ShareDistribution:
    """Tweets-per-URL distribution for one platform (Fig 2)."""

    platform: str
    cdf: ECDF
    single_share_frac: float
    mean_shares: float
    max_shares: int


def daily_discovery(dataset: StudyDataset, platform: str) -> DailyDiscovery:
    """Compute the Fig 1 series for one platform."""
    n_days = dataset.n_days
    all_counts = [0] * n_days
    unique_sets: List[set] = [set() for _ in range(n_days)]
    new_counts = [0] * n_days
    for record in dataset.records_for(platform):
        first_day = min(int(t) for _, t in record.shares)
        if 0 <= first_day < n_days:
            new_counts[first_day] += 1
        for _, t in record.shares:
            day = int(t)
            if 0 <= day < n_days:
                all_counts[day] += 1
                unique_sets[day].add(record.canonical)
    return DailyDiscovery(
        platform=platform,
        days=list(range(n_days)),
        all_counts=all_counts,
        unique_counts=[len(s) for s in unique_sets],
        new_counts=new_counts,
    )


def tweets_per_url(dataset: StudyDataset, platform: str) -> ShareDistribution:
    """Compute the Fig 2 distribution for one platform."""
    counts = [record.n_shares for record in dataset.records_for(platform)]
    if not counts:
        raise ValueError(f"no URLs discovered for {platform}")
    arr = np.asarray(counts, dtype=float)
    return ShareDistribution(
        platform=platform,
        cdf=ecdf(arr),
        single_share_frac=float(np.mean(arr == 1)),
        mean_shares=float(arr.mean()),
        max_shares=int(arr.max()),
    )


@dataclass(frozen=True)
class TopSharedURL:
    """One of the most-shared URLs, with a content label.

    The paper manually examined the 14 Telegram URLs shared in more
    than 10 K tweets, finding 11 about pornography, 2 about
    cryptocurrencies, and 1 general discussion group; the ``category``
    here comes from keyword classification of the sharing tweets.
    """

    canonical: str
    platform: str
    n_shares: int
    category: str


_CATEGORY_KEYWORDS: Tuple[Tuple[str, FrozenSet[str]], ...] = (
    ("pornography", frozenset(
        "sex porn nude boobs pussy cum girls onlyfans cam xpro "
        "performer hot leaked".split()
    )),
    ("cryptocurrency", frozenset(
        "bitcoin btc ethereum crypto usdt trx trc sats airdrop token "
        "tokens coin".split()
    )),
)


def _classify_record(dataset: StudyDataset, record) -> str:
    votes: Dict[str, int] = {}
    for tweet_id, _ in record.shares[:50]:
        # Partial/streamed datasets may not retain every shared tweet;
        # classify from the tweets that are present.
        tweet = dataset.tweets.get(tweet_id)
        if tweet is None:
            continue
        tokens = set(tokenize_for_lda(tweet.text))
        for category, keywords in _CATEGORY_KEYWORDS:
            if tokens & keywords:
                votes[category] = votes.get(category, 0) + 1
                break
    if not votes:
        return "general"
    category, count = max(votes.items(), key=lambda item: item[1])
    return category if count >= 2 else "general"


def top_shared_urls(
    dataset: StudyDataset,
    platform: str,
    n: int = 14,
    classifier: Optional[Callable[[StudyDataset, object], str]] = None,
) -> List[TopSharedURL]:
    """The ``n`` most-shared URLs, content-classified from their tweets.

    Reproduces the paper's manual examination of Telegram's mega-shared
    URLs with automatic keyword classification (override with a custom
    ``classifier(dataset, record) -> str``).
    """
    classify = classifier or _classify_record
    records = sorted(
        dataset.records_for(platform),
        key=lambda record: record.n_shares,
        reverse=True,
    )[:n]
    return [
        TopSharedURL(
            canonical=record.canonical,
            platform=platform,
            n_shares=record.n_shares,
            category=classify(dataset, record),
        )
        for record in records
    ]
