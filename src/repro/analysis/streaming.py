"""Streaming (single-pass, bounded-memory) Section 4-6 analyses.

The batch analyses consume a fully materialised
:class:`~repro.core.dataset.StudyDataset` — every tweet, share and
snapshot object of the campaign in memory at once, O(campaign).  This
module computes the same results by *folding* the per-day analysis
slices a slice-enabled run store records (see
:mod:`repro.checkpoint.slices`), holding only:

* per-URL scalars (share counts, first-seen time, first/last sizes,
  last snapshot state) — one small tuple per URL, never the objects;
* per-platform aggregate counters (entity/language/type counts);
* per-platform author-id sets (the irreducible dedup state of the
  paper's Table 2 total row);
* a short sliding window of per-day distinct-URL sets (shares can
  arrive up to the search lookback after their calendar day); and
* seeded :class:`StreamingECDF` reservoirs bounding every
  distribution sample.

Equality contract with the batch path: below the reservoir threshold
every ECDF keeps its full sample and every scalar statistic is an
exact count ratio, so streaming results — and the reports rendered
from them — are byte-identical to the batch analyses of the same
campaign.  Above the threshold, scalar statistics (fractions, means,
maxima, counts) remain exact and only the distribution quantiles
degrade to reservoir estimates.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.content import EntityPrevalence
from repro.analysis.language import LanguageShares
from repro.analysis.interplay import InterplayResult
from repro.analysis.membership import MembershipResult, growth_stats
from repro.analysis.messages import (
    GroupActivity,
    MessageTypeMix,
    UserActivity,
)
from repro.analysis.revocation import RevocationResult
from repro.analysis.sharing import DailyDiscovery, ShareDistribution
from repro.analysis.staleness import StalenessResult
from repro.analysis.stats import ECDF, ecdf, share_of_top_fraction
from repro.errors import CheckpointError
from repro.platforms.base import MessageType
from repro.resilience.health import CollectionHealth

__all__ = [
    "DEFAULT_EPOCH_DAYS",
    "RESERVOIR_THRESHOLD",
    "StreamingAnalyzer",
    "StreamingECDF",
    "iter_day_slices",
]

PLATFORMS = ("whatsapp", "telegram", "discord")

#: Default reservoir capacity.  Below it the sampler keeps the full
#: sample (exact mode, byte-identical to batch); above it, Algorithm R
#: caps the buffer and quantiles become estimates.
RESERVOIR_THRESHOLD = 4096

#: Default epoch length for the per-epoch rollup series: the paper's
#: own campaign window (38 days).
DEFAULT_EPOCH_DAYS = 38

#: Sliding-window length (days) for per-day distinct-URL sets.  Search
#: polls look back up to 7 days after an outage, so a calendar day can
#: keep receiving shares for that long; 15 is a comfortable margin and
#: bounds the live sets to O(day) regardless of campaign length.
_UNIQUE_WINDOW_DAYS = 15


def _label_seed(root_seed: int, label: str) -> int:
    """A stable per-distribution reservoir seed (hash-salt free)."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class StreamingECDF:
    """A seeded reservoir sampler feeding the :class:`ECDF` API.

    Exact below ``threshold``: the full sample is kept and
    :meth:`to_ecdf` goes through the same :func:`ecdf` numpy path as
    the batch analyses, so results are byte-identical.  Above it, the
    buffer is a uniform Algorithm-R reservoir — deterministic given
    (seed, feed order) — and quantiles become estimates while
    :attr:`n` keeps the true count.
    """

    def __init__(
        self, seed: int = 0, threshold: int = RESERVOIR_THRESHOLD
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._threshold = int(threshold)
        self._rng = random.Random(seed)
        self._values: List[float] = []
        self._n = 0

    @property
    def n(self) -> int:
        """True number of values observed (not the buffer length)."""
        return self._n

    @property
    def exact(self) -> bool:
        """Whether the buffer still holds the complete sample."""
        return self._n <= self._threshold

    def add(self, value: float) -> None:
        """Feed one value."""
        self._n += 1
        if len(self._values) < self._threshold:
            self._values.append(float(value))
            return
        j = self._rng.randrange(self._n)
        if j < self._threshold:
            self._values[j] = float(value)

    def extend(self, values) -> None:
        """Feed an iterable of values in order."""
        for value in values:
            self.add(value)

    def to_ecdf(self) -> ECDF:
        """The (exact or reservoir-estimated) empirical CDF."""
        return ecdf(self._values)


def iter_day_slices(store) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Yield ``(day, slice)`` for every campaign day, in day order.

    Requires a slice-enabled store with contiguous coverage from day 0
    through its latest checkpointed day; a gap raises
    :class:`CheckpointError` naming the first missing day (a store
    forked mid-campaign has no slices for its inherited past and is
    reported this way).
    """
    from repro.checkpoint import decode_day_slice

    if not store.slices_enabled:
        raise CheckpointError(
            f"checkpoint store {store.directory} records no analysis "
            "slices; run the campaign with slices enabled "
            "(repro run --slices)"
        )
    latest = store.latest_day()
    for day in range(latest + 1):
        if not store.has_slice(day):
            raise CheckpointError(
                f"checkpoint store {store.directory} has no analysis "
                f"slice for day {day}; streaming analysis needs "
                "contiguous slices from day 0"
            )
        yield day, decode_day_slice(store.read_slice(day))


class _PlatformFold:
    """Per-platform residual state of the streaming fold."""

    def __init__(self) -> None:
        # Discovery / sharing (Fig 1, Fig 2).
        self.all_counts: Dict[int, int] = {}
        self.unique_frozen: Dict[int, int] = {}
        self.unique_window: Dict[int, Set[str]] = {}
        self.share_counts: Dict[str, int] = {}
        self.first_seen: Dict[str, float] = {}
        # Tweets (Fig 3, Fig 4, Table 2).
        self.n_tweets = 0
        self.entity = {
            "hashtag1": 0,
            "hashtag2": 0,
            "mention1": 0,
            "mention2": 0,
            "retweets": 0,
        }
        self.langs: Dict[str, int] = {}
        self.authors: Set[int] = set()
        # Monitor snapshots (Fig 5, Fig 6, Fig 7): one scalar tuple
        # per URL — [first_size, first_online, last_size, n_alive,
        # last_alive, last_state, last_day].
        self.snap_state: Dict[str, List[Any]] = {}
        self.created: Dict[str, float] = {}

    def freeze_unique_through(self, day: int) -> None:
        for tday in [d for d in self.unique_window if d <= day]:
            self.unique_frozen[tday] = len(self.unique_window.pop(tday))


class StreamingAnalyzer:
    """Single-pass fold of day slices into the batch result types.

    Feed slices through :meth:`fold` in day order (or use
    :meth:`from_store`), optionally :meth:`fold_rollup`, then call the
    result accessors — each mirrors its batch counterpart's semantics
    (including the ``ValueError`` raised for a platform with no data).
    """

    def __init__(
        self,
        n_days: int,
        seed: int = 0,
        reservoir_threshold: int = RESERVOIR_THRESHOLD,
        epoch_days: int = DEFAULT_EPOCH_DAYS,
    ) -> None:
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        if epoch_days < 1:
            raise ValueError(f"epoch_days must be >= 1, got {epoch_days}")
        self.n_days = int(n_days)
        self.seed = int(seed)
        self.reservoir_threshold = int(reservoir_threshold)
        self.epoch_days = int(epoch_days)
        self._platforms: Dict[str, _PlatformFold] = {}
        self._control = {
            "n": 0,
            "hashtag1": 0,
            "hashtag2": 0,
            "mention1": 0,
            "mention2": 0,
            "retweets": 0,
        }
        self._control_langs: Dict[str, int] = {}
        self._interplay_multi = 0
        self._interplay_pairs: Dict[Tuple[str, str], int] = {}
        self._n_tweets_total = 0
        self._n_snapshots = 0
        self._n_missed = 0
        self._health: Dict[str, Any] = {}
        self._epochs: Dict[int, Dict[str, Any]] = {}
        self._rollup: Optional[Dict[str, Any]] = None
        self._days_folded = 0
        self._last_day: Optional[int] = None

    # -- folding -----------------------------------------------------------

    @classmethod
    def from_store(
        cls,
        store,
        reservoir_threshold: int = RESERVOIR_THRESHOLD,
        epoch_days: int = DEFAULT_EPOCH_DAYS,
        through_day: Optional[int] = None,
    ) -> "StreamingAnalyzer":
        """Fold every slice (and the rollup, if present) of a store.

        ``through_day`` bounds the fold to slices for days ``0`` to
        ``through_day`` inclusive — the serve daemon uses it to fold
        exactly the published prefix of a live store.  The rollup is
        folded only when the bound covers the full campaign window.
        """
        config = store.manifest.get("config")
        if not isinstance(config, dict) or "n_days" not in config:
            raise CheckpointError(
                f"checkpoint store {store.directory} has no config "
                "summary in its manifest"
            )
        analyzer = cls(
            n_days=int(config["n_days"]),
            seed=int(config.get("seed", 0)),
            reservoir_threshold=reservoir_threshold,
            epoch_days=epoch_days,
        )
        for day, body in iter_day_slices(store):
            if through_day is not None and day > through_day:
                break
            analyzer.fold(body)
        complete = through_day is None or through_day >= analyzer.n_days - 1
        if complete and store.has_rollup:
            from repro.checkpoint import decode_rollup

            analyzer.fold_rollup(decode_rollup(store.read_rollup()))
        return analyzer

    def _platform(self, platform: str) -> _PlatformFold:
        fold = self._platforms.get(platform)
        if fold is None:
            fold = self._platforms[platform] = _PlatformFold()
        return fold

    def fold(self, body: Dict[str, Any]) -> None:
        """Fold one day slice (must arrive in day order)."""
        day = int(body["day"])
        if self._last_day is not None and day <= self._last_day:
            raise CheckpointError(
                f"slice for day {day} folded after day {self._last_day}; "
                "slices must be folded in ascending day order"
            )
        self._last_day = day
        self._days_folded += 1
        epoch = self._epoch(day)

        for platform, block in body.get("discovery", {}).items():
            fold = self._platform(platform)
            for tday_str, count in block.get("per_day", {}).items():
                tday = int(tday_str)
                fold.all_counts[tday] = fold.all_counts.get(tday, 0) + count
                epoch["shares"] += count
            for canonical, tday in block.get("pairs", []):
                fold.unique_window.setdefault(int(tday), set()).add(canonical)
            for canonical, (count, min_t) in block.get(
                "per_url", {}
            ).items():
                if canonical not in fold.share_counts:
                    epoch["new_urls"] += 1
                fold.share_counts[canonical] = (
                    fold.share_counts.get(canonical, 0) + count
                )
                seen = fold.first_seen.get(canonical)
                if seen is None or min_t < seen:
                    fold.first_seen[canonical] = min_t
            # Late shares reach back at most the search lookback;
            # older per-day sets are frozen to bare counts.
            fold.freeze_unique_through(day - _UNIQUE_WINDOW_DAYS)

        tweets = body.get("tweets", {})
        self._n_tweets_total += tweets.get("n_new", 0)
        epoch["tweets"] += tweets.get("n_new", 0)
        self._interplay_multi += tweets.get("multi_platform", 0)
        for key, count in tweets.get("pairs", {}).items():
            a, _, b = key.partition("|")
            pair = (a, b)
            self._interplay_pairs[pair] = (
                self._interplay_pairs.get(pair, 0) + count
            )
        for platform, block in tweets.get("per_platform", {}).items():
            fold = self._platform(platform)
            fold.n_tweets += block.get("n", 0)
            for field in fold.entity:
                fold.entity[field] += block.get(field, 0)
            for lang, count in block.get("langs", {}).items():
                fold.langs[lang] = fold.langs.get(lang, 0) + count
            fold.authors.update(block.get("authors", ()))

        for platform, rows in body.get("snapshots", {}).items():
            fold = self._platform(platform)
            for canonical, alive, state, size, online, created_t in rows:
                self._n_snapshots += 1
                epoch["snapshots"] += 1
                missed = state == "missed"
                if missed:
                    self._n_missed += 1
                    epoch["missed"] += 1
                state_row = fold.snap_state.get(canonical)
                if state_row is None:
                    state_row = fold.snap_state[canonical] = [
                        None, None, None, 0, alive, state, day,
                    ]
                else:
                    state_row[4] = alive
                    state_row[5] = state
                    state_row[6] = day
                if alive and not missed:
                    state_row[3] += 1
                    if state_row[0] is None and state_row[3] == 1:
                        state_row[0] = size
                        state_row[1] = online
                    state_row[2] = size
                if (
                    alive
                    and created_t is not None
                    and canonical not in fold.created
                ):
                    fold.created[canonical] = created_t

        control = body.get("control", {})
        self._control["n"] += control.get("n", 0)
        for field in ("hashtag1", "hashtag2", "mention1", "mention2",
                      "retweets"):
            self._control[field] += control.get(field, 0)
        for lang, count in control.get("langs", {}).items():
            self._control_langs[lang] = (
                self._control_langs.get(lang, 0) + count
            )

        health = body.get("health")
        if isinstance(health, dict):
            # Cumulative snapshot: the latest slice wins.
            self._health = health

    def fold_rollup(self, body: Dict[str, Any]) -> None:
        """Attach the end-of-campaign rollup (joined-group results)."""
        self._rollup = body
        health = body.get("health")
        if isinstance(health, dict) and health:
            self._health = health

    def _epoch(self, day: int) -> Dict[str, Any]:
        index = day // self.epoch_days
        epoch = self._epochs.get(index)
        if epoch is None:
            epoch = self._epochs[index] = {
                "epoch": index,
                "day_lo": index * self.epoch_days,
                "day_hi": min(
                    (index + 1) * self.epoch_days, self.n_days
                ) - 1,
                "shares": 0,
                "tweets": 0,
                "new_urls": 0,
                "snapshots": 0,
                "missed": 0,
            }
        return epoch

    # -- reservoir plumbing ------------------------------------------------

    def _reservoir(self, label: str) -> StreamingECDF:
        return StreamingECDF(
            seed=_label_seed(self.seed, label),
            threshold=self.reservoir_threshold,
        )

    def _require_rollup(self) -> Dict[str, Any]:
        if self._rollup is None:
            raise CheckpointError(
                "no campaign rollup folded: joined-group analyses need "
                "the end-of-campaign rollup record (the campaign has "
                "not finished, or the store predates slices)"
            )
        return self._rollup

    def _joined_block(self, platform: str) -> Dict[str, Any]:
        return self._require_rollup().get("joined", {}).get(platform, {})

    # -- Section 4: sharing dynamics ---------------------------------------

    def daily_discovery(self, platform: str) -> DailyDiscovery:
        """Fig 1 series for one platform (exact)."""
        fold = self._platform(platform)
        fold.freeze_unique_through(self.n_days + 1)
        all_counts = [0] * self.n_days
        unique_counts = [0] * self.n_days
        new_counts = [0] * self.n_days
        for tday, count in fold.all_counts.items():
            if 0 <= tday < self.n_days:
                all_counts[tday] = count
        for tday, count in fold.unique_frozen.items():
            if 0 <= tday < self.n_days:
                unique_counts[tday] = count
        for min_t in fold.first_seen.values():
            first_day = int(min_t)
            if 0 <= first_day < self.n_days:
                new_counts[first_day] += 1
        return DailyDiscovery(
            platform=platform,
            days=list(range(self.n_days)),
            all_counts=all_counts,
            unique_counts=unique_counts,
            new_counts=new_counts,
        )

    def tweets_per_url(self, platform: str) -> ShareDistribution:
        """Fig 2 distribution for one platform."""
        fold = self._platform(platform)
        if not fold.share_counts:
            raise ValueError(f"no URLs discovered for {platform}")
        sampler = self._reservoir(f"tweets_per_url:{platform}")
        n_single = 0
        total = 0
        max_shares = 0
        for count in fold.share_counts.values():
            sampler.add(count)
            if count == 1:
                n_single += 1
            total += count
            if count > max_shares:
                max_shares = count
        n = len(fold.share_counts)
        return ShareDistribution(
            platform=platform,
            cdf=sampler.to_ecdf(),
            single_share_frac=n_single / n,
            mean_shares=total / n,
            max_shares=max_shares,
        )

    # -- Fig 3 / Fig 4: tweet mechanisms and languages ---------------------

    def entity_prevalence(self, platform: str) -> EntityPrevalence:
        """Fig 3 statistics for one platform's tweets (exact)."""
        fold = self._platform(platform)
        return self._prevalence(platform, fold.n_tweets, fold.entity)

    def control_prevalence(self) -> EntityPrevalence:
        """Fig 3 statistics for the control dataset (exact)."""
        return self._prevalence("control", self._control["n"], self._control)

    @staticmethod
    def _prevalence(
        source: str, n: int, counts: Dict[str, int]
    ) -> EntityPrevalence:
        if n == 0:
            raise ValueError(f"no tweets to analyse for source {source!r}")
        return EntityPrevalence(
            source=source,
            n_tweets=n,
            hashtag_frac=counts["hashtag1"] / n,
            multi_hashtag_frac=counts["hashtag2"] / n,
            mention_frac=counts["mention1"] / n,
            multi_mention_frac=counts["mention2"] / n,
            retweet_frac=counts["retweets"] / n,
        )

    def language_shares(self, platform: str) -> LanguageShares:
        """Fig 4 language mix for one platform (exact)."""
        fold = self._platform(platform)
        return self._lang_shares(platform, fold.langs, fold.n_tweets)

    def control_language_shares(self) -> LanguageShares:
        """Language mix of the control dataset (exact)."""
        return self._lang_shares(
            "control", self._control_langs, self._control["n"]
        )

    @staticmethod
    def _lang_shares(
        source: str, langs: Dict[str, int], n: int
    ) -> LanguageShares:
        if n == 0:
            raise ValueError(f"no tweets to analyse for source {source!r}")
        ordered = tuple(
            (lang, count / n)
            for lang, count in sorted(
                langs.items(), key=lambda item: (-item[1], item[0])
            )
        )
        return LanguageShares(source=source, n_tweets=n, shares=ordered)

    # -- Section 5: monitor-derived analyses -------------------------------

    def staleness(self, platform: str) -> StalenessResult:
        """Fig 5 statistics for one platform.

        Discord creation dates come from the folded snapshots;
        WhatsApp/Telegram ones only exist post-join and ride in the
        rollup.
        """
        if platform == "discord":
            fold = self._platform(platform)
            values = [
                max(fold.first_seen.get(canonical, created) - created, 0.0)
                for canonical, created in fold.created.items()
            ]
        else:
            values = list(self._joined_block(platform).get("staleness", ()))
        if not values:
            raise ValueError(f"no creation dates known for {platform}")
        sampler = self._reservoir(f"staleness:{platform}")
        n_same_day = 0
        n_over_year = 0
        max_value = values[0]
        for value in values:
            sampler.add(value)
            if value < 1.0:
                n_same_day += 1
            if value > 365.0:
                n_over_year += 1
            if value > max_value:
                max_value = value
        n = len(values)
        return StalenessResult(
            platform=platform,
            n_groups=n,
            cdf=sampler.to_ecdf(),
            same_day_frac=n_same_day / n,
            over_year_frac=n_over_year / n,
            max_staleness_days=float(max_value),
        )

    def revocation(self, platform: str) -> RevocationResult:
        """Fig 6 statistics for one platform."""
        fold = self._platform(platform)
        if not fold.snap_state:
            raise ValueError(f"no monitored URLs for {platform}")
        sampler = self._reservoir(f"lifetimes:{platform}")
        revoked_per_day: Dict[int, int] = {}
        n_urls = 0
        n_revoked = 0
        n_before_first = 0
        n_unknown = 0
        n_lifetimes = 0
        for state_row in fold.snap_state.values():
            _f, _o, _l, n_alive, last_alive, last_state, last_day = state_row
            n_urls += 1
            if last_alive:
                continue
            if last_state == "unknown":
                n_unknown += 1
                continue
            n_revoked += 1
            revoked_per_day[last_day] = revoked_per_day.get(last_day, 0) + 1
            if n_alive == 0:
                n_before_first += 1
            sampler.add(float(n_alive))
            n_lifetimes += 1
        return RevocationResult(
            platform=platform,
            n_urls=n_urls,
            revoked_frac=n_revoked / n_urls,
            before_first_obs_frac=n_before_first / n_urls,
            lifetime_cdf=sampler.to_ecdf() if n_lifetimes else ecdf([]),
            revoked_per_day=revoked_per_day,
            n_unknown=n_unknown,
        )

    def membership(
        self, platform: str, member_cap: Optional[int] = None
    ) -> MembershipResult:
        """Fig 7 statistics for one platform."""
        fold = self._platform(platform)
        sizes = self._reservoir(f"sizes:{platform}")
        online = self._reservoir(f"online:{platform}")
        growths: List[float] = []
        n_sizes = 0
        n_at_cap = 0
        for state_row in fold.snap_state.values():
            first_size, first_online, last_size, n_alive = state_row[:4]
            if n_alive == 0 or first_size is None:
                continue
            n_sizes += 1
            sizes.add(float(first_size))
            if member_cap and first_size >= member_cap:
                n_at_cap += 1
            if first_online is not None and first_size > 0:
                online.add(first_online / first_size)
            if n_alive >= 2 and last_size is not None:
                growths.append(float(last_size - first_size))
        if n_sizes == 0:
            raise ValueError(f"no alive snapshots for {platform}")
        return MembershipResult(
            platform=platform,
            size_cdf=sizes.to_ecdf(),
            online_frac_cdf=online.to_ecdf() if online.n else None,
            **growth_stats(growths),
            at_cap_frac=(n_at_cap / n_sizes if member_cap else 0.0),
        )

    # -- Section 5/6: joined-group analyses (rollup-backed) ----------------

    def message_types(self, platform: str) -> MessageTypeMix:
        """Fig 8 message-type mix for one platform (exact)."""
        totals = self._joined_block(platform).get("type_counts", {})
        n = sum(totals.values())
        if n == 0:
            raise ValueError(f"no messages collected for {platform}")
        ordered = tuple(
            (MessageType(key), count / n)
            for key, count in sorted(
                totals.items(), key=lambda item: (-item[1], item[0])
            )
        )
        return MessageTypeMix(
            platform=platform, n_messages=n, fractions=ordered
        )

    def group_activity(self, platform: str) -> GroupActivity:
        """Fig 9a per-group message rates for one platform."""
        rates = list(self._joined_block(platform).get("rates", ()))
        if not rates:
            raise ValueError(f"no joined groups for {platform}")
        sampler = self._reservoir(f"group_rates:{platform}")
        n_over = 0
        max_rate = rates[0]
        for rate in rates:
            sampler.add(rate)
            if rate > 10.0:
                n_over += 1
            if rate > max_rate:
                max_rate = rate
        return GroupActivity(
            platform=platform,
            rate_cdf=sampler.to_ecdf(),
            over_10_frac=n_over / len(rates),
            max_rate=float(max_rate),
        )

    def user_activity(self, platform: str) -> UserActivity:
        """Fig 9b per-user message counts for one platform."""
        block = self._joined_block(platform)
        counts = list(block.get("user_counts", ()))
        if not counts:
            raise ValueError(f"no posting users observed for {platform}")
        sampler = self._reservoir(f"user_counts:{platform}")
        n_le_10 = 0
        for count in counts:
            sampler.add(count)
            if count <= 10:
                n_le_10 += 1
        n_members = block.get("n_members")
        poster_frac = (
            block.get("n_known_posters", 0) / n_members
            if n_members is not None and n_members > 0
            else None
        )
        return UserActivity(
            platform=platform,
            count_cdf=sampler.to_ecdf(),
            n_posters=block.get("n_posters", len(counts)),
            n_members_observed=n_members,
            poster_frac=poster_frac,
            top1pct_share=share_of_top_fraction(counts, 0.01),
            le_10_frac=n_le_10 / len(counts),
        )

    # -- cross-platform and campaign-level views ---------------------------

    def interplay(self) -> InterplayResult:
        """The cross-platform interplay statistics (exact)."""
        all_authors: Set[int] = set()
        author_platform_count: Dict[int, int] = {}
        n_tweets_sum = 0
        n_authors_sum = 0
        for platform in PLATFORMS:
            fold = self._platforms.get(platform)
            if fold is None:
                continue
            n_tweets_sum += fold.n_tweets
            n_authors_sum += len(fold.authors)
            all_authors |= fold.authors
            for author in fold.authors:
                author_platform_count[author] = (
                    author_platform_count.get(author, 0) + 1
                )
        cross_authors = sum(
            1 for count in author_platform_count.values() if count >= 2
        )
        return InterplayResult(
            n_tweets_total=self._n_tweets_total,
            n_tweets_sum=n_tweets_sum,
            multi_platform_tweets=self._interplay_multi,
            n_authors_total=len(all_authors),
            n_authors_sum=n_authors_sum,
            cross_platform_authors=cross_authors,
            platform_pair_tweets=dict(self._interplay_pairs),
        )

    def health(self) -> CollectionHealth:
        """The campaign's health ledger as of the last folded slice."""
        return CollectionHealth.from_dict(self._health)

    @property
    def n_snapshots(self) -> int:
        """Total monitor snapshots folded (incl. missed)."""
        return self._n_snapshots

    @property
    def n_missed(self) -> int:
        """Missed (transiently failed) snapshots folded."""
        return self._n_missed

    @property
    def has_rollup(self) -> bool:
        """Whether the end-of-campaign rollup has been folded."""
        return self._rollup is not None

    @property
    def days_folded(self) -> int:
        """Number of day slices folded so far."""
        return self._days_folded

    def rollup(self) -> Dict[str, Any]:
        """The raw end-of-campaign rollup record."""
        return self._require_rollup()

    def table2_counts(self, platform: str) -> Dict[str, int]:
        """Table 2 per-platform counting inputs (exact)."""
        fold = self._platform(platform)
        return {
            "n_tweets": fold.n_tweets,
            "n_authors": len(fold.authors),
            "n_records": len(fold.share_counts),
        }

    def epoch_rollups(self) -> List[Dict[str, Any]]:
        """Per-epoch activity rollups, ascending by epoch index."""
        return [self._epochs[index] for index in sorted(self._epochs)]
