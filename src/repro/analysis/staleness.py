"""Group staleness: age at the time of sharing (Fig 5, Section 5).

Staleness = days between a group's creation and its first appearance
on Twitter.  Creation dates come from different channels per platform,
exactly as in the paper: Discord exposes them through the invite API
(all monitored groups), while WhatsApp and Telegram reveal them only
after joining (416 / 100 groups).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.stats import ECDF, ecdf
from repro.core.dataset import StudyDataset

__all__ = ["StalenessResult", "staleness"]


@dataclass(frozen=True)
class StalenessResult:
    """Fig 5 statistics for one platform.

    Attributes:
        platform: Messaging platform.
        n_groups: Groups with a known creation date.
        cdf: ECDF of staleness in days.
        same_day_frac: Groups created on their first-share day.
        over_year_frac: Groups older than one year when shared.
        max_staleness_days: Age of the oldest shared group.
    """

    platform: str
    n_groups: int
    cdf: ECDF
    same_day_frac: float
    over_year_frac: float
    max_staleness_days: float


def _staleness_values(dataset: StudyDataset, platform: str) -> List[float]:
    values: List[float] = []
    if platform == "discord":
        # Creation dates are in the monitor snapshots (invite API).
        for canonical, snaps in dataset.snapshots.items():
            record = dataset.records.get(canonical)
            if record is None or record.platform != "discord":
                continue
            for snap in snaps:
                if snap.alive and snap.created_t is not None:
                    values.append(max(record.first_seen_t - snap.created_t, 0.0))
                    break
    else:
        for data in dataset.joined_for(platform):
            if data.created_t is None:
                continue
            record = dataset.records.get(data.canonical)
            if record is None:
                continue
            values.append(max(record.first_seen_t - data.created_t, 0.0))
    return values


def staleness(dataset: StudyDataset, platform: str) -> StalenessResult:
    """Compute Fig 5 for one platform."""
    values = _staleness_values(dataset, platform)
    if not values:
        raise ValueError(f"no creation dates known for {platform}")
    arr = np.asarray(values)
    return StalenessResult(
        platform=platform,
        n_groups=len(values),
        cdf=ecdf(arr),
        same_day_frac=float(np.mean(arr < 1.0)),
        over_year_frac=float(np.mean(arr > 365.0)),
        max_staleness_days=float(arr.max()),
    )
