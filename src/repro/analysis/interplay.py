"""Cross-platform interplay (the paper's first research question).

"What is the interplay between Twitter and the different messaging
platforms?"  Beyond the per-platform statistics, two signals connect
the platforms *through* Twitter:

* **cross-posted tweets** — single tweets advertising groups from more
  than one messaging platform at once;
* **cross-platform sharers** — Twitter accounts that share group URLs
  of several platforms over the window.

Both are why Table 2's total row (2,234,128 tweets, 806,372 users) is
smaller than the per-platform sum: the totals deduplicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.core.dataset import StudyDataset
from repro.core.patterns import extract_group_urls

__all__ = ["InterplayResult", "interplay"]

PLATFORMS = ("whatsapp", "telegram", "discord")


@dataclass(frozen=True)
class InterplayResult:
    """Cross-platform sharing statistics.

    Attributes:
        n_tweets_total: Distinct collected tweets (deduplicated).
        n_tweets_sum: Sum of the per-platform tweet counts.
        multi_platform_tweets: Tweets carrying URLs of >= 2 platforms.
        n_authors_total: Distinct authors across all platforms.
        n_authors_sum: Sum of per-platform distinct-author counts.
        cross_platform_authors: Authors sharing >= 2 platforms' URLs.
        platform_pair_tweets: (platform A, platform B) -> tweets
            carrying URLs of both.
    """

    n_tweets_total: int
    n_tweets_sum: int
    multi_platform_tweets: int
    n_authors_total: int
    n_authors_sum: int
    cross_platform_authors: int
    platform_pair_tweets: Dict[Tuple[str, str], int]

    @property
    def tweet_dedup_frac(self) -> float:
        """How much smaller the total tweet row is than the sum."""
        if self.n_tweets_sum == 0:
            return 0.0
        return 1.0 - self.n_tweets_total / self.n_tweets_sum

    @property
    def author_dedup_frac(self) -> float:
        """How much smaller the total user row is than the sum."""
        if self.n_authors_sum == 0:
            return 0.0
        return 1.0 - self.n_authors_total / self.n_authors_sum


def interplay(dataset: StudyDataset) -> InterplayResult:
    """Compute the cross-platform interplay statistics."""
    authors_by_platform: Dict[str, Set[int]] = {p: set() for p in PLATFORMS}
    tweets_by_platform: Dict[str, Set[int]] = {p: set() for p in PLATFORMS}
    multi_platform = 0
    pair_tweets: Dict[Tuple[str, str], int] = {}

    for tweet in dataset.tweets.values():
        platforms = sorted(
            {g.platform for g in extract_group_urls(tweet.urls)}
        )
        for platform in platforms:
            tweets_by_platform[platform].add(tweet.tweet_id)
            authors_by_platform[platform].add(tweet.author_id)
        if len(platforms) >= 2:
            multi_platform += 1
            for i, a in enumerate(platforms):
                for b in platforms[i + 1:]:
                    pair_tweets[(a, b)] = pair_tweets.get((a, b), 0) + 1

    all_authors: Set[int] = set()
    author_platform_count: Dict[int, int] = {}
    for platform in PLATFORMS:
        all_authors |= authors_by_platform[platform]
        for author in authors_by_platform[platform]:
            author_platform_count[author] = (
                author_platform_count.get(author, 0) + 1
            )
    cross_authors = sum(
        1 for count in author_platform_count.values() if count >= 2
    )

    return InterplayResult(
        n_tweets_total=len(dataset.tweets),
        n_tweets_sum=sum(len(s) for s in tweets_by_platform.values()),
        multi_platform_tweets=multi_platform,
        n_authors_total=len(all_authors),
        n_authors_sum=sum(len(s) for s in authors_by_platform.values()),
        cross_platform_authors=cross_authors,
        platform_pair_tweets=pair_tweets,
    )
