"""Distribution helpers shared by all analyses.

Most of the paper's figures are empirical CDFs; this module provides a
small, numpy-backed ECDF plus the concentration statistics used in
Section 5 (e.g. "the top 1 % of members are responsible for 63 % of
all messages").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ECDF",
    "bootstrap_ci",
    "ecdf",
    "fraction_at_most",
    "share_of_top_fraction",
]


@dataclass(frozen=True)
class ECDF:
    """An empirical cumulative distribution function.

    Attributes:
        values: Sorted sample values.
        probs: P(X <= values[i]), i.e. (i + 1) / n.
    """

    values: np.ndarray
    probs: np.ndarray

    @property
    def n(self) -> int:
        """Sample size."""
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        if self.n == 0:
            raise ValueError("ECDF of an empty sample")
        return float(np.searchsorted(self.values, x, side="right") / self.n)

    def quantile(self, q: float) -> float:
        """The q-quantile of the sample (0 <= q <= 1)."""
        if self.n == 0:
            raise ValueError("ECDF of an empty sample")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """The sample median."""
        return self.quantile(0.5)

    def series(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(x, P(X <= x)) pairs, downsampled for plotting/printing."""
        if self.n == 0:
            return []
        idx = np.unique(
            np.linspace(0, self.n - 1, min(max_points, self.n)).astype(int)
        )
        return [(float(self.values[i]), float(self.probs[i])) for i in idx]


def ecdf(sample: Iterable[float]) -> ECDF:
    """Build an :class:`ECDF` from any iterable of numbers."""
    values = np.sort(np.asarray(list(sample), dtype=float))
    n = len(values)
    probs = (np.arange(n) + 1) / n if n else np.empty(0)
    return ECDF(values=values, probs=probs)


def fraction_at_most(sample: Sequence[float], threshold: float) -> float:
    """Fraction of the sample that is <= ``threshold``."""
    values = np.asarray(sample, dtype=float)
    if values.size == 0:
        raise ValueError("fraction_at_most of an empty sample")
    return float(np.mean(values <= threshold))


def bootstrap_ci(
    sample: Sequence[float],
    statistic,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic.

    Useful when judging whether a paper-vs-measured gap at reduced
    scale is sampling noise or a calibration miss: a scaled-down study
    of 1-2 % of the paper's volume has visibly wide intervals on
    tail-sensitive statistics.

    Args:
        sample: The data.
        statistic: Callable mapping a 1-D array to a float.
        confidence: Interval coverage (e.g. 0.95).
        n_boot: Bootstrap resamples.
        seed: RNG seed (deterministic intervals).

    Returns:
        (lower, upper) percentile bounds.
    """
    values = np.asarray(sample, dtype=float)
    if values.size == 0:
        raise ValueError("bootstrap_ci of an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 10:
        raise ValueError(f"n_boot must be >= 10, got {n_boot}")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_boot)
    for i in range(n_boot):
        resample = values[rng.integers(0, values.size, size=values.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1.0 - alpha)),
    )


def share_of_top_fraction(counts: Sequence[float], fraction: float) -> float:
    """Share of the total mass held by the top ``fraction`` of items.

    ``share_of_top_fraction(messages_per_user, 0.01)`` answers "what
    fraction of all messages did the top 1 % of users post?" — at least
    one item is always included, matching how the paper computes the
    statistic on small user counts.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    values = np.sort(np.asarray(counts, dtype=float))[::-1]
    if values.size == 0:
        raise ValueError("share_of_top_fraction of an empty sample")
    total = values.sum()
    if total <= 0:
        return 0.0
    k = max(1, int(round(values.size * fraction)))
    return float(values[:k].sum() / total)
