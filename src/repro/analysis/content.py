"""Tweet-mechanism prevalence: hashtags, mentions, retweets (Fig 3).

For each platform's group-sharing tweets — and for the control
dataset — the fraction of tweets carrying at least one hashtag, at
least one mention, and the fraction that are retweets, plus the
more-than-one prevalences the paper quotes in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.dataset import StudyDataset
from repro.twitter.model import Tweet

__all__ = ["EntityPrevalence", "entity_prevalence", "control_prevalence"]


@dataclass(frozen=True)
class EntityPrevalence:
    """Fig 3 statistics for one tweet source.

    Attributes:
        source: Platform name or ``"control"``.
        n_tweets: Tweets analysed.
        hashtag_frac: P(tweet has >= 1 hashtag).
        multi_hashtag_frac: P(tweet has >= 2 hashtags).
        mention_frac: P(tweet has >= 1 mention).
        multi_mention_frac: P(tweet has >= 2 mentions).
        retweet_frac: P(tweet is a retweet).
    """

    source: str
    n_tweets: int
    hashtag_frac: float
    multi_hashtag_frac: float
    mention_frac: float
    multi_mention_frac: float
    retweet_frac: float


def _prevalence(source: str, tweets: Sequence[Tweet]) -> EntityPrevalence:
    n = len(tweets)
    if n == 0:
        raise ValueError(f"no tweets to analyse for source {source!r}")
    return EntityPrevalence(
        source=source,
        n_tweets=n,
        hashtag_frac=sum(1 for t in tweets if len(t.hashtags) >= 1) / n,
        multi_hashtag_frac=sum(1 for t in tweets if len(t.hashtags) >= 2) / n,
        mention_frac=sum(1 for t in tweets if len(t.mentions) >= 1) / n,
        multi_mention_frac=sum(1 for t in tweets if len(t.mentions) >= 2) / n,
        retweet_frac=sum(1 for t in tweets if t.is_retweet) / n,
    )


def entity_prevalence(dataset: StudyDataset, platform: str) -> EntityPrevalence:
    """Fig 3 statistics for one platform's group-sharing tweets."""
    return _prevalence(platform, dataset.tweets_for(platform))


def control_prevalence(dataset: StudyDataset) -> EntityPrevalence:
    """Fig 3 statistics for the control dataset."""
    return _prevalence("control", dataset.control_tweets)
