"""URL revocation and lifetime analysis (Fig 6, Section 5).

A URL's lifetime is the time from its discovery on Twitter until the
daily monitor finds the revocation notice.  URLs whose *first* daily
observation already fails were "revoked before our first observation"
— the paper's strongest ephemerality signal (67.4 % of all Discord
URLs, thanks to the 1-day default invite expiry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.stats import ECDF, ecdf
from repro.core.dataset import StudyDataset

__all__ = ["RevocationResult", "revocation"]


@dataclass(frozen=True)
class RevocationResult:
    """Fig 6 statistics for one platform.

    Attributes:
        platform: Messaging platform.
        n_urls: Monitored URLs.
        revoked_frac: Fraction revoked at some point in the window.
        before_first_obs_frac: Fraction of *all* URLs already dead at
            their first daily observation.
        lifetime_cdf: ECDF of accessible days for revoked URLs (0 means
            dead before first observation).
        revoked_per_day: Day index -> revocations detected that day.
    """

    platform: str
    n_urls: int
    revoked_frac: float
    before_first_obs_frac: float
    lifetime_cdf: ECDF
    revoked_per_day: Dict[int, int]
    #: URLs that never matched any group ('unknown' death reason) —
    #: counted among ``n_urls`` but never as revocations.
    n_unknown: int = 0


def revocation(dataset: StudyDataset, platform: str) -> RevocationResult:
    """Compute Fig 6 for one platform."""
    lifetimes: List[float] = []
    revoked_per_day: Dict[int, int] = {}
    n_urls = 0
    n_revoked = 0
    n_before_first = 0
    n_unknown = 0
    for record in dataset.records_for(platform):
        snaps = dataset.snapshots.get(record.canonical)
        if not snaps:
            continue
        n_urls += 1
        last = snaps[-1]
        if last.alive:
            continue
        if last.death_reason == "unknown":
            # Never a valid group: not a revocation event.
            n_unknown += 1
            continue
        n_revoked += 1
        revoked_per_day[last.day] = revoked_per_day.get(last.day, 0) + 1
        # Missed observations are unknowns, not confirmed-alive days.
        alive_days = sum(1 for snap in snaps if snap.alive and not snap.missed)
        if alive_days == 0:
            n_before_first += 1
        lifetimes.append(float(alive_days))
    if n_urls == 0:
        raise ValueError(f"no monitored URLs for {platform}")
    return RevocationResult(
        platform=platform,
        n_urls=n_urls,
        revoked_frac=n_revoked / n_urls,
        before_first_obs_frac=n_before_first / n_urls,
        lifetime_cdf=ecdf(lifetimes) if lifetimes else ecdf([]),
        revoked_per_day=revoked_per_day,
        n_unknown=n_unknown,
    )
