"""PII-exposure analyses (Tables 4 and 5, Section 6).

What each platform leaks, as measured by the pipeline:

* **WhatsApp** — the phone number of *every* observed user: group
  members (after joining) and, alarmingly, group creators (landing
  page, no join needed).  100 % exposure.
* **Telegram** — phone numbers only for the ~0.68 % of users who
  opted in to phone visibility.
* **Discord** — no phone numbers (email registration), but linked
  external accounts for ~30 % of users, broken down in Table 5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dataset import StudyDataset
from repro.privacy.pii import (
    ExposureSource,
    PIIExposure,
    PIIKind,
)

__all__ = [
    "PlatformPIISummary",
    "LinkedAccountBreakdown",
    "pii_summary",
    "discord_linked_accounts",
    "collect_exposures",
]


@dataclass(frozen=True)
class PlatformPIISummary:
    """One column of Table 4.

    Attributes:
        platform: Messaging platform.
        members_observed: Users observed inside joined groups.
        creators_observed: Creators observed without joining
            (WhatsApp landing pages only; 0 elsewhere).
        phones_exposed: Users whose phone number leaked.
        phone_frac: phones_exposed / users observed.
        linked_exposed: Users with >= 1 linked external account.
        linked_frac: linked_exposed / members observed.
    """

    platform: str
    members_observed: int
    creators_observed: int
    phones_exposed: int
    phone_frac: float
    linked_exposed: int
    linked_frac: float

    @property
    def users_observed(self) -> int:
        """All users whose data was observed (members + creators)."""
        return self.members_observed + self.creators_observed


@dataclass(frozen=True)
class LinkedAccountBreakdown:
    """Table 5: Discord users exposing each external platform."""

    n_users: int
    rows: Tuple[Tuple[str, int, float], ...]  # (platform, users, frac)


def pii_summary(dataset: StudyDataset, platform: str) -> PlatformPIISummary:
    """Compute one platform's Table 4 column."""
    users = dataset.users_for(platform)
    members_observed = len(users)
    phones = sum(1 for u in users if u.phone_hash is not None)
    linked = sum(1 for u in users if u.linked_accounts)

    creators_observed = 0
    creator_phones = 0
    if platform == "whatsapp":
        member_digests = {
            u.phone_hash.digest for u in users if u.phone_hash is not None
        }
        creator_digests = set()
        for record in dataset.records_for("whatsapp"):
            for snap in dataset.snapshots.get(record.canonical, []):
                if snap.alive and snap.creator_phone_hash is not None:
                    creator_digests.add(snap.creator_phone_hash.digest)
                    break
        new_creators = creator_digests - member_digests
        creators_observed = len(new_creators)
        creator_phones = len(new_creators)

    total_observed = members_observed + creators_observed
    total_phones = phones + creator_phones
    return PlatformPIISummary(
        platform=platform,
        members_observed=members_observed,
        creators_observed=creators_observed,
        phones_exposed=total_phones,
        phone_frac=total_phones / total_observed if total_observed else 0.0,
        linked_exposed=linked,
        linked_frac=linked / members_observed if members_observed else 0.0,
    )


def discord_linked_accounts(dataset: StudyDataset) -> LinkedAccountBreakdown:
    """Compute Table 5 from the observed Discord users."""
    users = dataset.users_for("discord")
    if not users:
        raise ValueError("no Discord users observed")
    counter: Counter = Counter()
    for user in users:
        for account in user.linked_accounts:
            counter[account.platform] += 1
    n = len(users)
    rows = tuple(
        (platform, count, count / n) for platform, count in counter.most_common()
    )
    return LinkedAccountBreakdown(n_users=n, rows=rows)


def collect_exposures(dataset: StudyDataset) -> List[PIIExposure]:
    """Normalise every observed leak into typed PIIExposure records."""
    exposures: List[PIIExposure] = []
    for user in dataset.users.values():
        if user.phone_hash is not None:
            source = (
                ExposureSource.GROUP_MEMBERSHIP
                if user.via == "member_list"
                else ExposureSource.API_PROFILE
            )
            exposures.append(
                PIIExposure(
                    platform=user.platform,
                    user_id=user.user_id,
                    kind=PIIKind.PHONE_NUMBER,
                    source=source,
                    value=user.phone_hash.digest,
                    country=user.country,
                )
            )
        for account in user.linked_accounts:
            exposures.append(
                PIIExposure(
                    platform=user.platform,
                    user_id=user.user_id,
                    kind=PIIKind.LINKED_ACCOUNT,
                    source=ExposureSource.API_PROFILE,
                    value=f"{account.platform}:{account.handle}",
                )
            )
    for record in dataset.records_for("whatsapp"):
        for snap in dataset.snapshots.get(record.canonical, []):
            if snap.alive and snap.creator_phone_hash is not None:
                exposures.append(
                    PIIExposure(
                        platform="whatsapp",
                        user_id=f"creator:{snap.creator_phone_hash.digest[:12]}",
                        kind=PIIKind.PHONE_NUMBER,
                        source=ExposureSource.LANDING_PAGE,
                        value=snap.creator_phone_hash.digest,
                        country=snap.creator_phone_hash.country,
                    )
                )
                break
    return exposures
