"""Analyses of Sections 4-6 — one module per table/figure family.

Every function takes a :class:`~repro.core.dataset.StudyDataset` (the
measurement pipeline's output) and returns a small result dataclass;
:mod:`repro.reporting` renders those as the paper's tables and figure
series.

Module map:

=================  =====================================================
Module             Reproduces
=================  =====================================================
``sharing``        Fig 1 (URLs/day), Fig 2 (tweets-per-URL CDF)
``interplay``      RQ1 cross-platform tweets/authors (Table 2 totals)
``content``        Fig 3 (hashtags / mentions / retweets vs control)
``language``       Fig 4 (tweet languages)
``topics``         Table 3 (LDA topics of English tweets)
``staleness``      Fig 5 (group age when shared)
``revocation``     Fig 6 (lifetime + revoked per day)
``membership``     Fig 7 (sizes, online fractions, growth), creators,
                   WhatsApp group countries
``messages``       Fig 8 (message types), Fig 9 (volumes per group/user)
``privacy``        Tables 4 & 5 (PII exposure)
``lda``            Latent Dirichlet Allocation (collapsed Gibbs)
``stats``          ECDFs, quantiles, concentration shares
``streaming``      All of the above, folded from day slices in
                   O(day) memory (long-horizon campaigns)
=================  =====================================================
"""

from repro.analysis import (
    content,
    interplay,
    language,
    lda,
    membership,
    messages,
    privacy,
    revocation,
    sharing,
    staleness,
    stats,
    streaming,
    topics,
)

__all__ = [
    "content",
    "interplay",
    "language",
    "lda",
    "membership",
    "messages",
    "privacy",
    "revocation",
    "sharing",
    "staleness",
    "stats",
    "streaming",
    "topics",
]
