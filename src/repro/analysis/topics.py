"""Topic modeling of English group-sharing tweets (Table 3).

As in the paper: take all English tweets that share a platform's group
URLs, remove stop words, fit LDA with ten topics, and report each
topic's top terms and tweet share.  The paper labelled topics manually;
here labels are assigned automatically by matching each fitted topic's
word distribution against the generative topic bank (which is itself
Table 3's published vocabulary), and a topic that matches nothing well
is labelled ``"(unmatched)"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.lda import LDAResult, fit_lda, fit_lda_minibatch
from repro.core.dataset import StudyDataset
from repro.text.tokenize import tokenize_for_lda
from repro.text.topicbank import PLATFORM_TOPICS, language_bank

__all__ = ["TopicSummary", "TopicModelResult", "extract_topics", "label_topics"]

#: Minimum fraction of a topic's probability mass that must land on a
#: bank topic's vocabulary for the label to be accepted.
_MATCH_THRESHOLD = 0.12


@dataclass(frozen=True)
class TopicSummary:
    """One extracted topic (a row of Table 3)."""

    index: int
    label: str
    share: float
    top_terms: Tuple[str, ...]
    match_score: float


@dataclass(frozen=True)
class TopicModelResult:
    """The full Table 3 column for one platform."""

    platform: str
    n_documents: int
    topics: Tuple[TopicSummary, ...]

    def labels(self) -> List[str]:
        """All assigned labels, in topic order."""
        return [topic.label for topic in self.topics]

    def share_of_label(self, label: str) -> float:
        """Total tweet share across topics carrying ``label``."""
        return sum(t.share for t in self.topics if t.label == label)


def label_topics(
    model: LDAResult, platform: str, lang: str = "en"
) -> List[Tuple[str, float]]:
    """Assign a bank label to each fitted topic.

    The score of (fitted topic, bank topic) is the fitted topic's
    probability mass on the bank topic's vocabulary; the best-scoring
    bank label wins if it clears :data:`_MATCH_THRESHOLD`.  For
    non-English languages the (platform, language) bank is used — the
    paper's Spanish/Portuguese analyses surface COVID-19 and politics
    topics that never appear in English.
    """
    bank = PLATFORM_TOPICS[platform] if lang == "en" else language_bank(
        platform, lang
    )
    if not bank:
        raise ValueError(f"no topic bank for platform={platform} lang={lang}")
    word_to_index = {w: i for i, w in enumerate(model.vocab)}
    labels: List[Tuple[str, float]] = []
    for topic in range(model.n_topics):
        dist = model.topic_word_dist(topic)
        best_label, best_score = "(unmatched)", 0.0
        for spec in bank:
            idx = [word_to_index[w] for w in spec.terms if w in word_to_index]
            score = float(dist[idx].sum()) if idx else 0.0
            if score > best_score:
                best_label, best_score = spec.label, score
        if best_score < _MATCH_THRESHOLD:
            best_label = "(unmatched)"
        labels.append((best_label, best_score))
    return labels


def extract_topics(
    dataset: StudyDataset,
    platform: str,
    n_topics: int = 10,
    n_iter: int = 50,
    seed: int = 0,
    n_terms: int = 10,
    lang: str = "en",
    batch_docs: Optional[int] = None,
) -> TopicModelResult:
    """Fit LDA on a platform's tweets in ``lang`` and summarise.

    ``lang="en"`` reproduces Table 3; the paper repeated the analysis
    for Spanish and Portuguese (results described in prose), which this
    function reproduces with ``lang="es"`` / ``lang="pt"``.

    ``batch_docs`` switches to the mini-batch Gibbs sampler
    (:func:`~repro.analysis.lda.fit_lda_minibatch`), bounding the
    resident token assignments to one batch — identical results
    whenever the corpus fits in a single batch.
    """
    docs: List[List[str]] = []
    for tweet in dataset.tweets_for(platform):
        if tweet.lang != lang:
            continue
        tokens = tokenize_for_lda(tweet.text)
        if tokens:
            docs.append(tokens)
    if not docs:
        raise ValueError(f"no {lang} tweets for {platform}")

    if batch_docs is not None:
        model = fit_lda_minibatch(
            docs,
            n_topics=n_topics,
            n_iter=n_iter,
            seed=seed,
            batch_docs=batch_docs,
        )
    else:
        model = fit_lda(docs, n_topics=n_topics, n_iter=n_iter, seed=seed)
    shares = model.topic_doc_shares()
    labels = label_topics(model, platform, lang)
    topics = tuple(
        TopicSummary(
            index=k,
            label=labels[k][0],
            share=float(shares[k]),
            top_terms=tuple(model.top_terms(k, n_terms)),
            match_score=labels[k][1],
        )
        for k in np.argsort(shares)[::-1]
    )
    return TopicModelResult(
        platform=platform, n_documents=len(docs), topics=topics
    )
