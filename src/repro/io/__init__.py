"""Dataset persistence and export.

A measurement campaign is expensive relative to its analyses, so the
collected :class:`~repro.core.dataset.StudyDataset` can be saved to a
single JSON file and reloaded later
(:func:`~repro.io.serialize.save_dataset` /
:func:`~repro.io.serialize.load_dataset`), and every analysis series
can be exported as CSV for external plotting
(:mod:`repro.io.export`).  All on-disk artefacts are written through
:mod:`repro.io.atomic`, so a crash mid-export never leaves a torn
file.

The re-exports below resolve lazily (PEP 562): low-level consumers —
notably the checkpoint store, which imports
:mod:`repro.io.atomic` — must not drag the whole analysis stack in
just to write a file.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.errors import DatasetError
    from repro.io.export import export_all_csv, export_figure_csv
    from repro.io.serialize import load_dataset, save_dataset

__all__ = [
    "DatasetError",
    "export_all_csv",
    "export_figure_csv",
    "load_dataset",
    "save_dataset",
]

_EXPORTS = {
    "DatasetError": ("repro.errors", "DatasetError"),
    "export_all_csv": ("repro.io.export", "export_all_csv"),
    "export_figure_csv": ("repro.io.export", "export_figure_csv"),
    "load_dataset": ("repro.io.serialize", "load_dataset"),
    "save_dataset": ("repro.io.serialize", "save_dataset"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name), attr)
    globals()[name] = value  # cache: next access skips the import
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
