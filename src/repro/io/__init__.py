"""Dataset persistence and export.

A measurement campaign is expensive relative to its analyses, so the
collected :class:`~repro.core.dataset.StudyDataset` can be saved to a
single JSON file and reloaded later
(:func:`~repro.io.serialize.save_dataset` /
:func:`~repro.io.serialize.load_dataset`), and every analysis series
can be exported as CSV for external plotting
(:mod:`repro.io.export`).
"""

from repro.errors import DatasetError
from repro.io.export import export_all_csv, export_figure_csv
from repro.io.serialize import load_dataset, save_dataset

__all__ = [
    "DatasetError",
    "export_all_csv",
    "export_figure_csv",
    "load_dataset",
    "save_dataset",
]
