"""``SHA256SUMS`` sidecar manifests for exported datasets.

The exact format ``sha256sum`` emits and ``sha256sum -c`` verifies:
one ``<hex digest>  <file name>`` line per file, names relative to the
manifest's own directory, sorted for reproducibility.  Written
atomically like every other artefact, so the manifest itself is never
torn.  :mod:`repro.integrity` builds its export verification on the
parse/compute halves of this module.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.io.atomic import atomic_write_text

__all__ = [
    "SHA256SUMS_NAME",
    "file_sha256",
    "parse_sha256sums",
    "write_sha256sums",
]

SHA256SUMS_NAME = "SHA256SUMS"

#: Length of a SHA-256 hex digest.
_DIGEST_LEN = 64


def file_sha256(path: Union[str, os.PathLike]) -> str:
    """SHA-256 (hex) of a file's bytes, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_sha256sums(
    directory: Union[str, os.PathLike],
    paths: Iterable[Union[str, os.PathLike]],
) -> Path:
    """Write ``<directory>/SHA256SUMS`` covering ``paths``."""
    directory = Path(directory)
    entries = sorted(
        (Path(path).name, file_sha256(path)) for path in paths
    )
    lines = [f"{digest}  {name}" for name, digest in entries]
    return atomic_write_text(
        directory / SHA256SUMS_NAME, "\n".join(lines) + "\n"
    )


def parse_sha256sums(path: Union[str, os.PathLike]) -> Dict[str, str]:
    """Parse a ``SHA256SUMS`` file into ``{file name: digest}``.

    Raises :class:`ValueError` on any malformed line — a flipped byte
    in the manifest must fail loudly, not verify vacuously.
    """
    sums: Dict[str, str] = {}
    text = Path(path).read_bytes().decode("utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        digest, sep, name = line.partition("  ")
        name = name.lstrip("*")  # sha256sum's binary-mode marker
        if (
            not sep
            or not name
            or len(digest) != _DIGEST_LEN
            or any(c not in "0123456789abcdef" for c in digest)
        ):
            raise ValueError(
                f"malformed SHA256SUMS line {lineno} in {path}: {line!r}"
            )
        sums[name] = digest
    return sums
