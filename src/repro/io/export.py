"""CSV export of every figure's data series.

For users who want to re-plot the paper's figures with their own
tooling: each ``figN.csv`` contains the exact series the corresponding
figure plots (daily counts for Fig 1, ECDF points for the CDF figures,
category fractions for Figs 3/4/8).

Every file is written atomically (:mod:`repro.io.atomic`), and
:func:`export_all_csv` finishes with a ``SHA256SUMS`` sidecar over the
exported files — same format as ``sha256sum``'s, verifiable with
``sha256sum -c`` or ``repro fsck <dir>`` — so a damaged or incomplete
export is detectable end-to-end.
"""

from __future__ import annotations

import csv
import io
import os
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.analysis.content import control_prevalence, entity_prevalence
from repro.analysis.language import language_shares
from repro.analysis.membership import membership
from repro.analysis.messages import group_activity, message_types, user_activity
from repro.analysis.revocation import revocation
from repro.analysis.sharing import daily_discovery, tweets_per_url
from repro.analysis.staleness import staleness
from repro.core.dataset import StudyDataset
from repro.io.atomic import atomic_write_text

__all__ = ["export_figure_csv", "export_all_csv", "FIGURES"]

PLATFORMS = ("whatsapp", "telegram", "discord")


def _write_csv(path: Path, header: Sequence[str], rows) -> None:
    # Rendered in memory, then one atomic replace: a crash mid-export
    # leaves either no file or the complete file, never a torn CSV.
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    atomic_write_text(path, buffer.getvalue())


def _fig1_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        series = daily_discovery(dataset, platform)
        for day in series.days:
            yield (
                platform, day, series.all_counts[day],
                series.unique_counts[day], series.new_counts[day],
            )


def _fig2_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        for x, p in tweets_per_url(dataset, platform).cdf.series():
            yield platform, x, p


def _fig3_rows(dataset: StudyDataset):
    results = [entity_prevalence(dataset, p) for p in PLATFORMS]
    results.append(control_prevalence(dataset))
    for res in results:
        yield (
            res.source, res.hashtag_frac, res.multi_hashtag_frac,
            res.mention_frac, res.multi_mention_frac, res.retweet_frac,
        )


def _fig4_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        for lang, frac in language_shares(dataset, platform).shares:
            yield platform, lang, frac


def _fig5_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        for x, p in staleness(dataset, platform).cdf.series():
            yield platform, x, p


def _fig6_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        res = revocation(dataset, platform)
        for day in sorted(res.revoked_per_day):
            yield platform, day, res.revoked_per_day[day]


def _fig7_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        res = membership(dataset, platform)
        for x, p in res.size_cdf.series():
            yield platform, "size", x, p
        if res.online_frac_cdf is not None:
            for x, p in res.online_frac_cdf.series():
                yield platform, "online_frac", x, p
        for x, p in res.growth_cdf.series():
            yield platform, "growth", x, p


def _fig8_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        for mtype, frac in message_types(dataset, platform).fractions:
            yield platform, mtype.value, frac


def _fig9_rows(dataset: StudyDataset):
    for platform in PLATFORMS:
        for x, p in group_activity(dataset, platform).rate_cdf.series():
            yield platform, "msgs_per_group_day", x, p
        for x, p in user_activity(dataset, platform).count_cdf.series():
            yield platform, "msgs_per_user", x, p


#: Figure name -> (CSV header, row generator).
FIGURES: Dict[str, tuple] = {
    "fig1": (("platform", "day", "all", "unique", "new"), _fig1_rows),
    "fig2": (("platform", "tweets_per_url", "cdf"), _fig2_rows),
    "fig3": (
        ("source", "hashtag", "multi_hashtag", "mention", "multi_mention",
         "retweet"),
        _fig3_rows,
    ),
    "fig4": (("platform", "language", "share"), _fig4_rows),
    "fig5": (("platform", "staleness_days", "cdf"), _fig5_rows),
    "fig6": (("platform", "day", "revocations"), _fig6_rows),
    "fig7": (("platform", "series", "value", "cdf"), _fig7_rows),
    "fig8": (("platform", "message_type", "share"), _fig8_rows),
    "fig9": (("platform", "series", "value", "cdf"), _fig9_rows),
}


def export_figure_csv(
    dataset: StudyDataset, figure: str, directory: Union[str, os.PathLike]
) -> Path:
    """Write one figure's series to ``<directory>/<figure>.csv``."""
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; available: {sorted(FIGURES)}")
    header, rows = FIGURES[figure]
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{figure}.csv"
    _write_csv(path, header, rows(dataset))
    return path


def export_all_csv(
    dataset: StudyDataset, directory: Union[str, os.PathLike]
) -> List[Path]:
    """Write every figure's series; returns the written CSV paths.

    Finishes with a ``SHA256SUMS`` manifest over the files just
    written (:mod:`repro.io.sums`), so the exported dataset is
    verifiable end-to-end — by ``sha256sum -c``, or by
    ``repro fsck <directory>``.
    """
    from repro.io.sums import write_sha256sums

    paths = [
        export_figure_csv(dataset, figure, directory) for figure in FIGURES
    ]
    write_sha256sums(directory, paths)
    return paths
