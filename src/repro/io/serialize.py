"""StudyDataset JSON persistence.

The full dataset round-trips through a single JSON document (optionally
gzip-compressed when the path ends in ``.gz``): discovery records,
tweets, control tweets, daily snapshots, joined-group aggregates, and
user observations.  Hashed phones serialise as (country, dialing code,
digest) — consistent with the ethics protocol, no raw number ever
touches disk.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Any, Dict, List, Optional, Union

from repro.core.dataset import (
    JoinedGroupData,
    Snapshot,
    StudyDataset,
    UserObservation,
)
from repro.core.discovery import URLRecord
from repro.errors import DatasetError
from repro.platforms.base import GroupKind, MessageType
from repro.privacy.hashing import HashedPhone
from repro.privacy.pii import LinkedAccount
from repro.resilience.health import CollectionHealth
from repro.twitter.model import Tweet

__all__ = ["save_dataset", "load_dataset", "DatasetError", "FORMAT_VERSION"]

#: Bumped on any incompatible change to the on-disk layout.
FORMAT_VERSION = 1


# -- encoding ----------------------------------------------------------------


def _tweet_to_dict(tweet: Tweet) -> Dict[str, Any]:
    return {
        "id": tweet.tweet_id,
        "author": tweet.author_id,
        "t": tweet.t,
        "text": tweet.text,
        "lang": tweet.lang,
        "hashtags": list(tweet.hashtags),
        "mentions": list(tweet.mentions),
        "urls": list(tweet.urls),
        "rt_of": tweet.retweet_of,
    }


def _record_to_dict(record: URLRecord) -> Dict[str, Any]:
    return {
        "canonical": record.canonical,
        "platform": record.platform,
        "code": record.code,
        "url": record.url,
        "first_seen_t": record.first_seen_t,
        "shares": record.shares,
        "via_search": record.via_search,
        "via_stream": record.via_stream,
    }


def _hashed_phone_to_dict(phone: Optional[HashedPhone]) -> Optional[Dict[str, str]]:
    if phone is None:
        return None
    return {
        "country": phone.country,
        "dialing_code": phone.dialing_code,
        "digest": phone.digest,
    }


def _snapshot_to_dict(snap: Snapshot) -> Dict[str, Any]:
    item = {
        "canonical": snap.canonical,
        "day": snap.day,
        "t": snap.t,
        "alive": snap.alive,
        "size": snap.size,
        "online": snap.online,
        "title": snap.title,
        "kind": snap.kind.value if snap.kind else None,
        "creator_dialing_code": snap.creator_dialing_code,
        "creator_phone_hash": _hashed_phone_to_dict(snap.creator_phone_hash),
        "creator_id": snap.creator_id,
        "created_t": snap.created_t,
    }
    # 'state' is emitted only when it carries information beyond
    # ``alive`` ('missed'/'unknown'), keeping fault-free exports
    # byte-identical to the pre-resilience layout.
    if snap.state:
        item["state"] = snap.state
    return item


def _joined_to_dict(data: JoinedGroupData) -> Dict[str, Any]:
    return {
        "platform": data.platform,
        "canonical": data.canonical,
        "gid": data.gid,
        "join_t": data.join_t,
        "kind": data.kind.value if data.kind else None,
        "created_t": data.created_t,
        "size_at_join": data.size_at_join,
        "n_messages": data.n_messages,
        "type_counts": {
            mtype.value: count for mtype, count in data.type_counts.items()
        },
        "daily_counts": {str(day): c for day, c in data.daily_counts.items()},
        "sender_counts": data.sender_counts,
        "member_ids": data.member_ids,
        "member_list_hidden": data.member_list_hidden,
        "creator_id": data.creator_id,
    }


def _user_to_dict(obs: UserObservation) -> Dict[str, Any]:
    return {
        "platform": obs.platform,
        "user_id": obs.user_id,
        "phone_hash": _hashed_phone_to_dict(obs.phone_hash),
        "country": obs.country,
        "linked_accounts": [
            {"platform": a.platform, "handle": a.handle}
            for a in obs.linked_accounts
        ],
        "via": obs.via,
    }


def save_dataset(dataset: StudyDataset, path: Union[str, os.PathLike]) -> None:
    """Write the dataset to ``path`` (gzip when it ends in ``.gz``)."""
    document = {
        "format_version": FORMAT_VERSION,
        "n_days": dataset.n_days,
        "scale": dataset.scale,
        "message_scale": dataset.message_scale,
        "records": [_record_to_dict(r) for r in dataset.records.values()],
        "tweets": [_tweet_to_dict(t) for t in dataset.tweets.values()],
        "control_tweets": [_tweet_to_dict(t) for t in dataset.control_tweets],
        "snapshots": {
            canonical: [_snapshot_to_dict(s) for s in snaps]
            for canonical, snaps in dataset.snapshots.items()
        },
        "joined": [_joined_to_dict(j) for j in dataset.joined],
        "users": [_user_to_dict(u) for u in dataset.users.values()],
    }
    # Collection health is part of the artefact only when the campaign
    # actually saw faults/retries/misses; a clean campaign's export is
    # byte-identical to one written before the resilience layer.
    if dataset.health is not None and not dataset.health.is_clean():
        document["health"] = dataset.health.to_dict()
    payload = json.dumps(document, separators=(",", ":"))
    path = os.fspath(path)
    if path.endswith(".gz"):
        # mtime=0 keeps the gzip header out of the byte-identity
        # contract: same dataset, same bytes on disk, whenever written.
        with open(path, "wb") as raw:
            with gzip.GzipFile(
                filename="", mode="wb", fileobj=raw, mtime=0
            ) as handle:
                handle.write(payload.encode("utf-8"))
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)


# -- decoding ----------------------------------------------------------------


def _tweet_from_dict(item: Dict[str, Any]) -> Tweet:
    return Tweet(
        tweet_id=item["id"],
        author_id=item["author"],
        t=item["t"],
        text=item["text"],
        lang=item["lang"],
        hashtags=tuple(item["hashtags"]),
        mentions=tuple(item["mentions"]),
        urls=tuple(item["urls"]),
        retweet_of=item["rt_of"],
    )


def _record_from_dict(item: Dict[str, Any]) -> URLRecord:
    return URLRecord(
        canonical=item["canonical"],
        platform=item["platform"],
        code=item["code"],
        url=item["url"],
        first_seen_t=item["first_seen_t"],
        shares=[tuple(pair) for pair in item["shares"]],
        via_search=item["via_search"],
        via_stream=item["via_stream"],
    )


def _hashed_phone_from_dict(
    item: Optional[Dict[str, str]],
) -> Optional[HashedPhone]:
    if item is None:
        return None
    return HashedPhone(
        country=item["country"],
        dialing_code=item["dialing_code"],
        digest=item["digest"],
    )


def _snapshot_from_dict(item: Dict[str, Any]) -> Snapshot:
    return Snapshot(
        canonical=item["canonical"],
        day=item["day"],
        t=item["t"],
        alive=item["alive"],
        size=item["size"],
        online=item["online"],
        title=item["title"],
        kind=GroupKind(item["kind"]) if item["kind"] else None,
        creator_dialing_code=item["creator_dialing_code"],
        creator_phone_hash=_hashed_phone_from_dict(item["creator_phone_hash"]),
        creator_id=item["creator_id"],
        created_t=item["created_t"],
        state=item.get("state", ""),
    )


def _joined_from_dict(item: Dict[str, Any]) -> JoinedGroupData:
    return JoinedGroupData(
        platform=item["platform"],
        canonical=item["canonical"],
        gid=item["gid"],
        join_t=item["join_t"],
        kind=GroupKind(item["kind"]) if item["kind"] else None,
        created_t=item["created_t"],
        size_at_join=item["size_at_join"],
        n_messages=item["n_messages"],
        type_counts={
            MessageType(value): count
            for value, count in item["type_counts"].items()
        },
        daily_counts={int(day): c for day, c in item["daily_counts"].items()},
        sender_counts=item["sender_counts"],
        member_ids=item["member_ids"],
        member_list_hidden=item["member_list_hidden"],
        creator_id=item["creator_id"],
    )


def _user_from_dict(item: Dict[str, Any]) -> UserObservation:
    return UserObservation(
        platform=item["platform"],
        user_id=item["user_id"],
        phone_hash=_hashed_phone_from_dict(item["phone_hash"]),
        country=item["country"],
        linked_accounts=tuple(
            LinkedAccount(platform=a["platform"], handle=a["handle"])
            for a in item["linked_accounts"]
        ),
        via=item["via"],
    )


def load_dataset(path: Union[str, os.PathLike]) -> StudyDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    Raises:
        DatasetError: The file is truncated or corrupt (bad gzip
            stream, invalid JSON) or carries an unsupported format
            version; the message names the offending path.
    """
    path = os.fspath(path)
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                document = json.load(handle)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
    except FileNotFoundError:
        raise
    except json.JSONDecodeError as exc:
        raise DatasetError(f"invalid JSON in dataset {path}: {exc}") from exc
    except (EOFError, gzip.BadGzipFile, UnicodeDecodeError) as exc:
        # EOFError: truncated gzip stream; BadGzipFile: not gzip at
        # all (e.g. a renamed plain file, or flipped magic bytes).
        raise DatasetError(
            f"truncated or corrupt dataset {path}: {exc}"
        ) from exc

    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version {version!r} "
            f"(expected {FORMAT_VERSION}) in {path}"
        )

    dataset = StudyDataset(
        n_days=document["n_days"],
        scale=document["scale"],
        message_scale=document["message_scale"],
    )
    dataset.records = {
        item["canonical"]: _record_from_dict(item)
        for item in document["records"]
    }
    dataset.tweets = {
        item["id"]: _tweet_from_dict(item) for item in document["tweets"]
    }
    dataset.control_tweets = [
        _tweet_from_dict(item) for item in document["control_tweets"]
    ]
    dataset.snapshots = {
        canonical: [_snapshot_from_dict(s) for s in snaps]
        for canonical, snaps in document["snapshots"].items()
    }
    dataset.joined = [_joined_from_dict(item) for item in document["joined"]]
    dataset.users = {
        (item["platform"], item["user_id"]): _user_from_dict(item)
        for item in document["users"]
    }
    if "health" in document:
        dataset.health = CollectionHealth.from_dict(document["health"])
    return dataset
