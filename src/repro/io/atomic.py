"""Crash-safe file writes shared by every artefact the pipeline emits.

One discipline, one implementation: write the payload to a temporary
file *in the same directory* as the destination (so the final rename
never crosses a filesystem boundary), flush and ``fsync`` the file so
the bytes are durable before they become visible, atomically
``os.replace`` it over the destination, then ``fsync`` the directory
so the rename itself survives a power cut.  A reader therefore sees
either the old complete file or the new complete file — never a torn
one — and a crash mid-write leaves at worst a ``*.tmp`` leftover that
:mod:`repro.integrity` classifies as an orphan.

Used by the checkpoint store (day records, manifest, checksum
sidecar), the CSV exporters and their ``SHA256SUMS`` manifest, the
telemetry exporters, and the chaos/fsck report writers.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["TMP_SUFFIX", "atomic_write_bytes", "atomic_write_text"]

#: Suffix of the in-flight temporary file; an orphaned one of these is
#: the only debris a crash mid-write can leave behind.
TMP_SUFFIX = ".tmp"


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (the rename) to stable storage."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        dir_fd = os.open(directory, flags)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_bytes(
    path: Union[str, os.PathLike], data: bytes, *, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    tmp = path.with_name(path.name + TMP_SUFFIX)
    with open(tmp, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_directory(path.parent)
    return path


def atomic_write_text(
    path: Union[str, os.PathLike], text: str, *, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``; returns the path."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
