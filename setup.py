"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'";
this shim enables `pip install -e . --no-use-pep517`.
"""

from setuptools import setup

setup()
